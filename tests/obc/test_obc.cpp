// OBC solver tests built around analytically solvable leads.
//
// The main workhorse is the 1-D single-orbital chain (onsite 0, hopping t,
// orthogonal basis): E(k) = 2 t cos k, and the retarded boundary self-energy
// is Sigma(E) = E/2 - i sqrt(t^2 - E^2/4) inside the band.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "dft/hamiltonian.hpp"
#include "numeric/blas.hpp"
#include "numeric/eig.hpp"
#include "numeric/lu.hpp"
#include "obc/companion.hpp"
#include "obc/decimation.hpp"
#include "obc/feast.hpp"
#include "obc/modes.hpp"
#include "obc/self_energy.hpp"
#include "obc/shift_invert.hpp"

namespace nm = omenx::numeric;
namespace ob = omenx::obc;
namespace df = omenx::dft;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

constexpr double kHop = -1.0;

df::LeadBlocks chain_lead(double t = kHop, double onsite = 0.0) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  lead.h[0] = CMatrix{{cplx{onsite}}};
  lead.h[1] = CMatrix{{cplx{t}}};
  lead.s[0] = CMatrix::identity(1);
  lead.s[1] = CMatrix(1, 1);
  return lead;
}

df::FoldedLead folded_chain(double t = kHop, double onsite = 0.0) {
  df::FoldedLead f;
  f.h00 = CMatrix{{cplx{onsite}}};
  f.h01 = CMatrix{{cplx{t}}};
  f.s00 = CMatrix::identity(1);
  f.s01 = CMatrix(1, 1);
  return f;
}

// Random Hermitian multi-orbital lead with nonsingular coupling (NBW = 1).
df::LeadBlocks random_lead(idx s, unsigned seed) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  CMatrix a = nm::random_cmatrix(s, s, seed);
  lead.h[0] = a + nm::dagger(a);
  lead.h[1] = nm::random_cmatrix(s, s, seed + 1);
  for (idx i = 0; i < s; ++i) lead.h[1](i, i) += cplx{2.0};
  lead.s[0] = CMatrix::identity(s);
  lead.s[1] = CMatrix(s, s);
  return lead;
}

df::FoldedLead fold_of(const df::LeadBlocks& lead) { return df::fold_lead(lead); }

cplx analytic_sigma(double e, double t) {
  // Retarded: Im Sigma < 0 inside the band.
  const double disc = t * t - e * e / 4.0;
  if (disc > 0.0) return cplx{e / 2.0, -std::sqrt(disc)};
  const double root = std::sqrt(-disc);
  // Outside the band pick the decaying branch.
  const double sign = e > 0.0 ? -1.0 : 1.0;
  return cplx{e / 2.0 + sign * root, 0.0};
}

}  // namespace

TEST(Companion, ChainEigenvaluesOnUnitCircleInsideBand) {
  const auto lead = chain_lead();
  const ob::CompanionPencil pencil(lead, cplx{-1.0});
  EXPECT_EQ(pencil.dim(), 2);
  const auto eig = nm::generalized_eig(pencil.a_dense(), pencil.b_dense());
  ASSERT_EQ(eig.values.size(), 2u);
  for (const auto lam : eig.values) EXPECT_NEAR(std::abs(lam), 1.0, 1e-10);
  // E = -2 cos k = -1 => k = +-pi/3 => lambda = e^{+-i pi/3}.
  const double expected_re = std::cos(omenx::numeric::kPi / 3.0);
  for (const auto lam : eig.values) EXPECT_NEAR(lam.real(), expected_re, 1e-10);
}

TEST(Companion, PolynomialEvaluation) {
  const auto lead = chain_lead();
  const cplx e{0.3};
  const ob::CompanionPencil pencil(lead, e);
  // P(z) = Htilde_{-1} + Htilde_0 z + Htilde_1 z^2 for the chain:
  // = t + (0 - E) z + t z^2 (t real, onsite 0, S=I).
  const cplx z{0.7, 0.4};
  const CMatrix p = pencil.polynomial(z);
  const cplx expected = cplx{kHop} + (cplx{0.0} - e) * z + cplx{kHop} * z * z;
  EXPECT_LT(std::abs(p(0, 0) - expected), 1e-13);
}

TEST(Companion, SolveShiftedMatchesDense) {
  const auto lead = random_lead(3, 7);
  const cplx e{0.4, 0.0};
  const ob::CompanionPencil pencil(lead, e);
  const cplx z{1.3, 0.8};
  const CMatrix y = nm::random_cmatrix(pencil.dim(), 4, 21);
  const CMatrix fast = pencil.solve_shifted(z, y);
  // Dense reference: (z B - A) X = B Y.
  CMatrix zb_a = pencil.b_dense() * z - pencil.a_dense();
  const CMatrix rhs = nm::matmul(pencil.b_dense(), y);
  const CMatrix ref = nm::solve(zb_a, rhs);
  EXPECT_LT(nm::max_abs_diff(fast, ref), 1e-9);
}

TEST(Companion, SolveShiftedMultiNeighbor) {
  // NBW = 2 chain: second-neighbour hopping.
  df::LeadBlocks lead;
  lead.h.resize(3);
  lead.s.resize(3);
  lead.h[0] = CMatrix{{cplx{0.1}}};
  lead.h[1] = CMatrix{{cplx{-1.0}}};
  lead.h[2] = CMatrix{{cplx{-0.2}}};
  lead.s[0] = CMatrix::identity(1);
  lead.s[1] = CMatrix(1, 1);
  lead.s[2] = CMatrix(1, 1);
  const ob::CompanionPencil pencil(lead, cplx{0.3});
  EXPECT_EQ(pencil.dim(), 4);
  const cplx z{0.9, -0.3};
  const CMatrix y = nm::random_cmatrix(4, 2, 31);
  CMatrix zb_a = pencil.b_dense() * z - pencil.a_dense();
  const CMatrix ref = nm::solve(zb_a, nm::matmul(pencil.b_dense(), y));
  EXPECT_LT(nm::max_abs_diff(pencil.solve_shifted(z, y), ref), 1e-10);
}

TEST(Modes, ChainClassificationAndVelocity) {
  const auto lead = chain_lead();
  const double e = -1.0;
  const auto modes = ob::compute_modes_shift_invert(lead, cplx{e});
  ASSERT_EQ(modes.lambda.size(), 2u);
  EXPECT_EQ(modes.num_propagating_right, 1);
  EXPECT_EQ(modes.num_propagating_left, 1);
  // v = dE/dk = -2 t sin k; for t=-1, E=-1 => k=pi/3 => v = 2 sin(pi/3).
  const double expected_v = 2.0 * std::sin(omenx::numeric::kPi / 3.0);
  for (std::size_t m = 0; m < modes.lambda.size(); ++m) {
    if (modes.kind[m] == ob::ModeKind::kPropagatingRight)
      EXPECT_NEAR(modes.velocity[m], expected_v, 1e-8);
    else
      EXPECT_NEAR(modes.velocity[m], -expected_v, 1e-8);
  }
}

TEST(Modes, OutsideBandModesAreEvanescent) {
  const auto lead = chain_lead();
  const auto modes = ob::compute_modes_shift_invert(lead, cplx{3.0});
  EXPECT_EQ(modes.num_propagating_right, 0);
  EXPECT_EQ(modes.num_propagating_left, 0);
  ASSERT_EQ(modes.lambda.size(), 2u);
  // One decaying each way, and their phases are reciprocal.
  const double m0 = std::abs(modes.lambda[0]);
  const double m1 = std::abs(modes.lambda[1]);
  EXPECT_NEAR(m0 * m1, 1.0, 1e-8);
  EXPECT_NE(modes.kind[0], modes.kind[1]);
}

TEST(SelfEnergy, ChainMatchesAnalyticInsideBand) {
  const auto lead = chain_lead();
  for (const double e : {-1.5, -0.5, 0.0, 0.7, 1.8}) {
    const auto modes = ob::compute_modes_shift_invert(lead, cplx{e});
    const auto ops = ob::lead_operators(folded_chain(), cplx{e});
    const auto bnd = ob::build_boundary(modes, ops);
    const cplx expected = analytic_sigma(e, kHop);
    EXPECT_LT(std::abs(bnd.sigma_l(0, 0) - expected), 1e-7) << "E=" << e;
    EXPECT_LT(std::abs(bnd.sigma_r(0, 0) - expected), 1e-7) << "E=" << e;
  }
}

TEST(SelfEnergy, ModeBasedMatchesDecimation) {
  const auto lead = random_lead(4, 42);
  const cplx e{0.25};
  const auto modes = ob::compute_modes_shift_invert(lead, e);
  const auto ops = ob::lead_operators(fold_of(lead), e);
  const auto bnd = ob::build_boundary(modes, ops);
  ob::DecimationOptions dopt;
  dopt.eta = 1e-8;
  const CMatrix sl = ob::sigma_left_decimation(ops, dopt);
  const CMatrix sr = ob::sigma_right_decimation(ops, dopt);
  EXPECT_LT(nm::max_abs_diff(bnd.sigma_l, sl), 1e-5);
  EXPECT_LT(nm::max_abs_diff(bnd.sigma_r, sr), 1e-5);
}

TEST(SelfEnergy, BroadeningMatricesArePositiveSemiDefinite) {
  const auto lead = random_lead(4, 43);
  const cplx e{0.1};
  const auto modes = ob::compute_modes_shift_invert(lead, e);
  const auto ops = ob::lead_operators(fold_of(lead), e);
  const auto bnd = ob::build_boundary(modes, ops);
  for (const CMatrix* sig : {&bnd.sigma_l, &bnd.sigma_r}) {
    CMatrix gamma = *sig - nm::dagger(*sig);
    gamma *= cplx{0.0, 1.0};  // Gamma = i (Sigma - Sigma^H)
    const auto he = nm::hermitian_eig(gamma);
    for (const double v : he.values) EXPECT_GT(v, -1e-8);
  }
}

TEST(SelfEnergy, InjectionCountMatchesPropagatingModes) {
  const auto lead = chain_lead();
  const auto modes = ob::compute_modes_shift_invert(lead, cplx{-1.0});
  const auto ops = ob::lead_operators(folded_chain(), cplx{-1.0});
  const auto bnd = ob::build_boundary(modes, ops);
  EXPECT_EQ(bnd.num_incident, 1);
  EXPECT_EQ(bnd.inj.cols(), 1);
  EXPECT_GT(std::abs(bnd.inj(0, 0)), 0.0);
  ASSERT_EQ(bnd.inj_velocity.size(), 1u);
  EXPECT_GT(bnd.inj_velocity[0], 0.0);
}

TEST(Feast, AnnulusSelectsSubsetOfSpectrum) {
  // Fig. 5: only modes inside 1/R <= |lambda| <= R are retained.
  const auto lead = random_lead(4, 44);
  const cplx e{0.3};
  const auto all = ob::compute_modes_shift_invert(lead, e);
  ob::FeastOptions fopt;
  fopt.annulus_r = 3.0;
  ob::FeastStats stats;
  const auto feast = ob::compute_modes_feast(lead, e, fopt, &stats);
  idx inside = 0;
  for (const auto lam : all.lambda) {
    const double m = std::abs(lam);
    if (m >= 1.0 / fopt.annulus_r && m <= fopt.annulus_r) ++inside;
  }
  EXPECT_EQ(static_cast<idx>(feast.lambda.size()), inside);
  EXPECT_LT(stats.max_residual, 1e-6);
  for (const auto lam : feast.lambda) {
    const double m = std::abs(lam);
    EXPECT_GE(m, 1.0 / fopt.annulus_r - 1e-8);
    EXPECT_LE(m, fopt.annulus_r + 1e-8);
  }
}

TEST(Feast, EigenvaluesMatchShiftInvert) {
  const auto lead = random_lead(3, 45);
  const cplx e{-0.2};
  const auto all = ob::compute_modes_shift_invert(lead, e);
  ob::FeastOptions fopt;
  fopt.annulus_r = 4.0;
  const auto feast = ob::compute_modes_feast(lead, e, fopt);
  // Every FEAST eigenvalue appears in the full spectrum.
  for (const auto lam : feast.lambda) {
    double best = 1e9;
    for (const auto ref : all.lambda)
      best = std::min(best, std::abs(lam - ref));
    EXPECT_LT(best, 1e-6);
  }
}

TEST(Feast, SelfEnergyAgreesWithDecimationOnChain) {
  const auto lead = chain_lead();
  const cplx e{-0.9};
  ob::FeastOptions fopt;
  fopt.annulus_r = 50.0;  // generous annulus: all modes captured
  const auto modes = ob::compute_modes_feast(lead, e, fopt);
  const auto ops = ob::lead_operators(folded_chain(), e);
  const auto bnd = ob::build_boundary(modes, ops);
  EXPECT_LT(std::abs(bnd.sigma_l(0, 0) - analytic_sigma(e.real(), kHop)),
            1e-6);
}

TEST(Feast, SerialAndParallelPointsAgree) {
  const auto lead = random_lead(3, 46);
  const cplx e{0.15};
  ob::FeastOptions ser;
  ser.parallel_points = false;
  ob::FeastOptions par;
  par.parallel_points = true;
  const auto a = ob::compute_modes_feast(lead, e, ser);
  const auto b = ob::compute_modes_feast(lead, e, par);
  ASSERT_EQ(a.lambda.size(), b.lambda.size());
}

TEST(Decimation, ChainSurfaceGfAnalytic) {
  const auto ops = ob::lead_operators(folded_chain(), cplx{-1.0});
  ob::DecimationOptions dopt;
  dopt.eta = 1e-9;
  const CMatrix sl = ob::sigma_left_decimation(ops, dopt);
  EXPECT_LT(std::abs(sl(0, 0) - analytic_sigma(-1.0, kHop)), 1e-6);
}

TEST(Decimation, RetardedSignConvention) {
  // Inside the band, Im Sigma < 0 (retarded) on both sides.
  for (const double e : {-1.0, 0.0, 1.0}) {
    const auto ops = ob::lead_operators(folded_chain(), cplx{e});
    EXPECT_LT(ob::sigma_left_decimation(ops)(0, 0).imag(), 0.0);
    EXPECT_LT(ob::sigma_right_decimation(ops)(0, 0).imag(), 0.0);
  }
}

TEST(PseudoInverse, RecoversInverseForSquareFullRank) {
  CMatrix a = nm::random_cmatrix(5, 5, 47);
  for (idx i = 0; i < 5; ++i) a(i, i) += cplx{3.0};
  const CMatrix pinv = ob::pseudo_inverse(a, 1e-14);
  EXPECT_LT(nm::max_abs_diff(nm::matmul(pinv, a), CMatrix::identity(5)), 1e-8);
}

TEST(PseudoInverse, LeastSquaresPropertyTallMatrix) {
  const CMatrix u = nm::random_cmatrix(8, 3, 48);
  const CMatrix pinv = ob::pseudo_inverse(u, 1e-14);
  // pinv * u = I (3x3).
  EXPECT_LT(nm::max_abs_diff(nm::matmul(pinv, u), CMatrix::identity(3)), 1e-8);
}

// Energy sweep property: mode-based self-energy matches decimation across
// the band for a multi-orbital lead.
class SelfEnergySweep : public ::testing::TestWithParam<double> {};

TEST_P(SelfEnergySweep, ModeVsDecimation) {
  const auto lead = random_lead(3, 99);
  const cplx e{GetParam()};
  const auto modes = ob::compute_modes_shift_invert(lead, e);
  const auto ops = ob::lead_operators(fold_of(lead), e);
  const auto bnd = ob::build_boundary(modes, ops);
  ob::DecimationOptions dopt;
  dopt.eta = 1e-8;
  EXPECT_LT(nm::max_abs_diff(bnd.sigma_l, ob::sigma_left_decimation(ops, dopt)),
            1e-4);
}

INSTANTIATE_TEST_SUITE_P(Energies, SelfEnergySweep,
                         ::testing::Values(-2.0, -1.0, -0.3, 0.2, 0.9, 2.1));
