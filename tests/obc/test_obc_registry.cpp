// OBC strategy registry, mode-classification regressions, and the
// cross-sweep boundary cache.
//
// Parity fixture: two *decoupled* single-orbital chains folded into one
// s = 2 lead (chain A: onsite 0, t = -1, band [-2, 2]; chain B: onsite 5,
// t = -0.5, band [4, 6]).  At E = -1 only chain A propagates and chain B's
// modes sit far off the unit circle (|lambda| in {0.084, 11.9}), so a thin
// annulus (R = 2) holds exactly two modes — within Beyn method A's rank-s
// capacity — and, because the chains are decoupled, the annulus-truncated
// boundary transmits identically to the full one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "dft/hamiltonian.hpp"
#include "numeric/blas.hpp"
#include "obc/boundary_cache.hpp"
#include "obc/shift_invert.hpp"
#include "obc/strategy.hpp"
#include "transport/transmission.hpp"

namespace df = omenx::dft;
namespace nm = omenx::numeric;
namespace ob = omenx::obc;
namespace tr = omenx::transport;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

df::LeadBlocks chain_lead(double t = -1.0, double onsite = 0.0) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  lead.h[0] = CMatrix{{cplx{onsite}}};
  lead.h[1] = CMatrix{{cplx{t}}};
  lead.s[0] = CMatrix::identity(1);
  lead.s[1] = CMatrix(1, 1);
  return lead;
}

// Two decoupled chains as one 2-orbital lead (see file header).
df::LeadBlocks two_chain_lead() {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  lead.h[0] = CMatrix{{cplx{0.0}, cplx{0.0}}, {cplx{0.0}, cplx{5.0}}};
  lead.h[1] = CMatrix{{cplx{-1.0}, cplx{0.0}}, {cplx{0.0}, cplx{-0.5}}};
  lead.s[0] = CMatrix::identity(2);
  lead.s[1] = CMatrix(2, 2);
  return lead;
}

tr::EnergyPointOptions chain_point_options(tr::ObcAlgorithm obc) {
  tr::EnergyPointOptions opt;
  opt.obc = obc;
  opt.solver = tr::SolverAlgorithm::kBlockLU;
  opt.want_density = false;
  opt.want_current = false;
  return opt;
}

}  // namespace

// --- registry ------------------------------------------------------------

TEST(ObcRegistry, ListsAllBuiltins) {
  const auto names = ob::registered_obc_strategies();
  for (const char* expected :
       {"beyn", "decimation", "feast", "shift_invert"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(ObcRegistry, UnknownNameThrows) {
  EXPECT_THROW(ob::make_obc_strategy("transfer_matrix"),
               std::invalid_argument);
}

TEST(ObcRegistry, EnumAndNameAgree) {
  for (const auto algo :
       {ob::ObcAlgorithm::kShiftInvert, ob::ObcAlgorithm::kFeast,
        ob::ObcAlgorithm::kDecimation, ob::ObcAlgorithm::kBeyn}) {
    const auto by_enum = ob::make_obc_strategy(algo);
    const auto by_name = ob::make_obc_strategy(ob::obc_algorithm_name(algo));
    EXPECT_STREQ(by_enum->name(), by_name->name());
    EXPECT_STREQ(by_enum->name(), ob::obc_algorithm_name(algo));
  }
}

TEST(ObcRegistry, CapabilityBits) {
  for (const char* mode_based : {"shift_invert", "feast", "beyn"}) {
    const unsigned caps = ob::make_obc_strategy(mode_based)->capabilities();
    EXPECT_TRUE(caps & ob::kProvidesInjection) << mode_based;
    EXPECT_TRUE(caps & ob::kProvidesModes) << mode_based;
  }
  const unsigned dec = ob::make_obc_strategy("decimation")->capabilities();
  EXPECT_FALSE(dec & ob::kProvidesInjection);
  EXPECT_FALSE(dec & ob::kProvidesModes);
  EXPECT_EQ(ob::obc_algorithm_capabilities(ob::ObcAlgorithm::kDecimation),
            dec);
}

TEST(ObcRegistry, CustomRegistrationRoundTrip) {
  // A user-registered backend resolves by name like the built-ins.
  ob::register_obc_strategy("custom_decimation", [] {
    return ob::make_obc_strategy(ob::ObcAlgorithm::kDecimation);
  });
  const auto names = ob::registered_obc_strategies();
  EXPECT_NE(std::find(names.begin(), names.end(), "custom_decimation"),
            names.end());
  EXPECT_STREQ(ob::make_obc_strategy("custom_decimation")->name(),
               "decimation");
}

// --- mode-classification regressions -------------------------------------

TEST(GroupVelocity, KeepsSignOfNegativeBlochNorm) {
  // s00 = -I makes the s-weighted norm u^H Sv u = -1: the velocity must
  // flip sign with it, not take the magnitude of the denominator.
  ob::LeadOperators ops;
  ops.s00 = CMatrix{{cplx{-1.0}}};
  ops.s01 = CMatrix(1, 1);
  ops.t0 = CMatrix{{cplx{1.0}}};
  ops.tc = CMatrix{{cplx{0.0, 1.0}}};  // u^H tc u = i => numerator +2
  CMatrix u{{cplx{1.0}}};
  const double v = ob::group_velocity(cplx{1.0}, u, 0, ops);
  EXPECT_NEAR(v, -2.0, 1e-12);
}

TEST(FoldAndClassify, NegativeNormModeIsLeftMoving) {
  // Hand-built eigenpair: |lambda| = 1, positive-numerator velocity, but a
  // negative Bloch norm — the mode travels left.  The old magnitude-only
  // denominator classified it right-moving (wrong lead set => wrong Sigma
  // and injection).
  nm::EigResult eig;
  eig.values = {cplx{1.0}};
  eig.vectors = CMatrix{{cplx{1.0}}};
  ob::LeadOperators ops;
  ops.s00 = CMatrix{{cplx{-1.0}}};
  ops.s01 = CMatrix(1, 1);
  ops.t0 = CMatrix{{cplx{1.0}}};
  ops.tc = CMatrix{{cplx{0.0, 1.0}}};
  const auto modes = ob::fold_and_classify(eig, 1, 1, ops);
  ASSERT_EQ(modes.kind.size(), 1u);
  EXPECT_EQ(modes.kind[0], ob::ModeKind::kPropagatingLeft);
  EXPECT_LT(modes.velocity[0], 0.0);
  EXPECT_EQ(modes.num_propagating_right, 0);
  EXPECT_EQ(modes.num_propagating_left, 1);
}

TEST(FoldAndClassify, BandEdgeModesAreDemotedToDecaying) {
  // Chain band edge E = 2 (t = -1): a degenerate lambda = -1 pair with
  // vanishing group velocity.  sign(v) classification put *both* members
  // into the incident set (v >= 0) and double-counted the injection; they
  // carry no flux and belong with the evanescent states.
  const auto lead = chain_lead();
  const auto modes = ob::compute_modes_shift_invert(lead, cplx{2.0});
  ASSERT_EQ(modes.lambda.size(), 2u);
  EXPECT_EQ(modes.num_propagating_right, 0);
  EXPECT_EQ(modes.num_propagating_left, 0);
  for (const auto kind : modes.kind)
    EXPECT_TRUE(kind == ob::ModeKind::kDecayingRight ||
                kind == ob::ModeKind::kDecayingLeft);

  const auto ops = ob::lead_operators(df::fold_lead(lead), cplx{2.0});
  const auto bnd = ob::build_boundary(modes, ops);
  EXPECT_EQ(bnd.num_incident, 0);
  EXPECT_EQ(bnd.num_incident_right, 0);
}

TEST(FoldAndClassify, BandEdgeEnergyThroughSolveEnergyPoint) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = df::assemble_device(lead, 8, std::vector<double>(8, 0.0));
  const auto opt = chain_point_options(tr::ObcAlgorithm::kShiftInvert);
  const auto res = tr::solve_energy_point(dm, lead, folded, 2.0, opt);
  EXPECT_EQ(res.num_propagating, 0);
  EXPECT_DOUBLE_EQ(res.transmission, 0.0);
  // Just inside the band the channel must still open.
  const auto inside = tr::solve_energy_point(dm, lead, folded, 1.9, opt);
  EXPECT_EQ(inside.num_propagating, 1);
  EXPECT_NEAR(inside.transmission, 1.0, 1e-6);
}

// --- strategy parity -----------------------------------------------------

TEST(ObcParity, ShiftInvertVsFeastOnDecoupledChains) {
  // Full-spectrum parity: a wide FEAST annulus captures every mode, so it
  // must reproduce the dense shift-and-invert boundary and transmission; a
  // thin annulus (unit-circle modes only) still transmits identically here
  // because the omitted evanescent modes belong to the decoupled chain B.
  const auto lead = two_chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = df::assemble_device(lead, 8, std::vector<double>(8, 0.0));
  const double e = -1.0;

  auto solve = [&](tr::ObcAlgorithm algo, double annulus) {
    tr::EnergyPointOptions opt = chain_point_options(algo);
    opt.obc_opts.feast.annulus_r = annulus;
    return tr::solve_energy_point(dm, lead, folded, e, opt);
  };

  const auto si = solve(tr::ObcAlgorithm::kShiftInvert, 0.0);
  const auto feast_wide = solve(tr::ObcAlgorithm::kFeast, 50.0);
  const auto feast_thin = solve(tr::ObcAlgorithm::kFeast, 2.0);

  EXPECT_EQ(si.num_propagating, 1);
  EXPECT_NEAR(si.transmission, 1.0, 1e-8);
  for (const auto* r : {&feast_wide, &feast_thin}) {
    EXPECT_EQ(r->num_propagating, si.num_propagating);
    EXPECT_NEAR(r->transmission, si.transmission, 1e-5);
    EXPECT_NEAR(r->transmission_caroli, si.transmission_caroli, 1e-5);
  }
}

// Beyn's method A compresses onto the s-dimensional *polynomial* eigenspace,
// so it needs linearly independent eigenvectors inside the contour — a 1-D
// chain's +-k pair shares one u and is out of reach (see
// Beyn.MethodACapacityIsBlockSize).  The Beyn parity fixture is therefore
// the 3-orbital random lead of test_beyn at E = 6, where the thin annulus
// holds one independent-eigenvector propagating pair.
namespace {

df::LeadBlocks beyn_parity_lead() {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  CMatrix a = nm::random_cmatrix(3, 3, 33);
  lead.h[0] = a + nm::dagger(a);
  lead.h[1] = nm::random_cmatrix(3, 3, 34);
  for (idx i = 0; i < 3; ++i) lead.h[1](i, i) += cplx{2.0};
  lead.s[0] = CMatrix::identity(3);
  lead.s[1] = CMatrix(3, 3);
  return lead;
}

}  // namespace

TEST(ObcParity, BeynBoundaryMatchesFeastOnSameAnnulus) {
  // Same annulus => same truncated mode subspace => same Sigma and
  // injection count, through two entirely different eigensolvers (subspace
  // iteration vs contour moments).
  const auto lead = beyn_parity_lead();
  const auto folded = df::fold_lead(lead);
  const cplx e{6.0};
  ob::ObcOptions opts;
  opts.feast.annulus_r = 1.5;
  opts.beyn.annulus_r = 1.5;
  const auto feast =
      ob::make_obc_strategy("feast")->boundary(lead, folded, e, opts);
  const auto beyn =
      ob::make_obc_strategy("beyn")->boundary(lead, folded, e, opts);
  ASSERT_EQ(beyn.num_incident, feast.num_incident);
  ASSERT_EQ(beyn.num_incident_right, feast.num_incident_right);
  EXPECT_GT(beyn.num_incident, 0);
  EXPECT_LT(nm::max_abs_diff(beyn.sigma_l, feast.sigma_l), 1e-5);
  EXPECT_LT(nm::max_abs_diff(beyn.sigma_r, feast.sigma_r), 1e-5);
}

TEST(ObcParity, BeynTransmissionThroughRegistry) {
  // kBeyn end-to-end: selectable in solve_energy_point (no more dead
  // beyn.cpp) and in transmission parity with FEAST on the same annulus.
  const auto lead = beyn_parity_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = df::assemble_device(lead, 8, std::vector<double>(8, 0.0));
  auto solve = [&](tr::ObcAlgorithm algo) {
    tr::EnergyPointOptions opt = chain_point_options(algo);
    opt.obc_opts.feast.annulus_r = 1.5;
    opt.obc_opts.beyn.annulus_r = 1.5;
    return tr::solve_energy_point(dm, lead, folded, 6.0, opt);
  };
  const auto feast = solve(tr::ObcAlgorithm::kFeast);
  const auto beyn = solve(tr::ObcAlgorithm::kBeyn);
  EXPECT_EQ(beyn.num_propagating, feast.num_propagating);
  EXPECT_GT(beyn.num_propagating, 0);
  EXPECT_NEAR(beyn.transmission, feast.transmission, 1e-5);
  EXPECT_NEAR(beyn.transmission_caroli, feast.transmission_caroli, 1e-5);
}

TEST(ObcParity, ContactShiftEqualsShiftedEnergy) {
  // A lead at uniform potential V is the pristine lead at E - V — the
  // identity the strategies implement and the cache keys on.
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const double v_shift = 0.3;
  ob::ObcOptions shifted;
  shifted.contact_shift = v_shift;
  auto strat = ob::make_obc_strategy("shift_invert");
  const auto a = strat->boundary(lead, folded, cplx{-0.5}, shifted);
  const auto b = strat->boundary(lead, folded, cplx{-0.5 - v_shift}, {});
  EXPECT_LT(nm::max_abs_diff(a.sigma_l, b.sigma_l), 1e-12);
  EXPECT_LT(nm::max_abs_diff(a.sigma_r, b.sigma_r), 1e-12);
}

// --- BoundaryOptions plumbing --------------------------------------------

TEST(BoundaryOptions, OneRidgeGovernsSigmaAndProjection) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const cplx e{-0.5};
  auto strat = ob::make_obc_strategy("shift_invert");
  ob::ObcOptions tight;  // default 1e-12 ridge
  ob::ObcOptions loose;
  loose.boundary.pinv_ridge = 0.5;
  const auto a = strat->boundary(lead, folded, e, tight);
  const auto b = strat->boundary(lead, folded, e, loose);
  // The ridge reaches the self-energy construction...
  EXPECT_GT(nm::max_abs_diff(a.sigma_l, b.sigma_l), 1e-3);

  // ...and the transmission projection: a deliberately huge ridge must
  // visibly damp the flux-normalized amplitudes.
  const auto dm = df::assemble_device(lead, 8, std::vector<double>(8, 0.0));
  auto opt = chain_point_options(tr::ObcAlgorithm::kShiftInvert);
  const auto base = tr::solve_energy_point(dm, lead, folded, -0.5, opt);
  opt.obc_opts.boundary.pinv_ridge = 0.5;
  const auto damped = tr::solve_energy_point(dm, lead, folded, -0.5, opt);
  EXPECT_NEAR(base.transmission, 1.0, 1e-6);
  EXPECT_GT(std::abs(damped.transmission - base.transmission), 1e-3);
}

// --- capability enforcement ----------------------------------------------

TEST(ObcCapabilities, DensityRequestRejectedWithoutInjection) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = df::assemble_device(lead, 8, std::vector<double>(8, 0.0));
  tr::EnergyPointOptions opt;
  opt.obc = tr::ObcAlgorithm::kDecimation;
  opt.solver = tr::SolverAlgorithm::kBlockLU;
  opt.want_density = true;
  opt.want_current = false;
  EXPECT_THROW(tr::solve_energy_point(dm, lead, folded, -0.5, opt),
               std::invalid_argument);
  // Bond currents are wave-function observables too: same rejection.
  opt.want_density = false;
  opt.want_current = true;
  EXPECT_THROW(tr::solve_energy_point(dm, lead, folded, -0.5, opt),
               std::invalid_argument);
}

// --- boundary cache ------------------------------------------------------

TEST(BoundaryCache, HitMissInvalidateCounters) {
  ob::BoundaryCache cache;
  const ob::BoundaryKey key{2, -0.5, 0.0};
  EXPECT_EQ(cache.find(key), nullptr);
  ob::Boundary bnd;
  bnd.num_incident = 7;
  const auto stored = cache.insert(key, std::move(bnd));
  ASSERT_NE(stored, nullptr);
  const auto hit = cache.find(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), stored.get());
  EXPECT_EQ(hit->num_incident, 7);
  // Key components are all significant: k, energy, and shift each miss.
  EXPECT_EQ(cache.find({3, -0.5, 0.0}), nullptr);
  EXPECT_EQ(cache.find({2, -0.5 + 1e-15, 0.0}), nullptr);
  EXPECT_EQ(cache.find({2, -0.5, 0.1}), nullptr);

  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(cache.size(), 1u);

  cache.invalidate();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(key), nullptr);
  s = cache.stats();
  EXPECT_EQ(s.invalidations, 1u);
  // The handle from before the invalidation stays valid.
  EXPECT_EQ(hit->num_incident, 7);
}

TEST(BoundaryCache, FirstInsertionIsCanonical) {
  ob::BoundaryCache cache;
  const ob::BoundaryKey key{0, 1.0, 0.0};
  ob::Boundary first;
  first.num_incident = 1;
  ob::Boundary second;
  second.num_incident = 2;
  cache.insert(key, std::move(first));
  const auto kept = cache.insert(key, std::move(second));
  EXPECT_EQ(kept->num_incident, 1);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(BoundaryCache, CapEvictsOldestInsertionsFirst) {
  ob::BoundaryCache cache(/*max_entries=*/2);
  for (int i = 0; i < 5; ++i)
    cache.insert({i, 0.0, 0.0}, ob::Boundary{});
  EXPECT_EQ(cache.size(), 2u);
  // FIFO: the two newest insertions survive, the oldest are gone.
  EXPECT_EQ(cache.find({0, 0.0, 0.0}), nullptr);
  EXPECT_EQ(cache.find({2, 0.0, 0.0}), nullptr);
  EXPECT_NE(cache.find({3, 0.0, 0.0}), nullptr);
  EXPECT_NE(cache.find({4, 0.0, 0.0}), nullptr);
  // reserve() raises the cap (and never lowers it).
  cache.reserve(8);
  EXPECT_EQ(cache.max_entries(), 8u);
  cache.reserve(4);
  EXPECT_EQ(cache.max_entries(), 8u);
}

TEST(BoundaryCache, KeyedByAlgorithm) {
  // Two backends at the same (k, E, shift) produce different Boundaries
  // (truncated vs full spectra) and must never alias in the cache.
  ob::BoundaryCache cache;
  ob::Boundary feast_bnd;
  feast_bnd.num_incident = 1;
  const int feast = static_cast<int>(ob::ObcAlgorithm::kFeast);
  const int beyn = static_cast<int>(ob::ObcAlgorithm::kBeyn);
  cache.insert({0, -0.5, 0.0, feast}, std::move(feast_bnd));
  EXPECT_NE(cache.find({0, -0.5, 0.0, feast}), nullptr);
  EXPECT_EQ(cache.find({0, -0.5, 0.0, beyn}), nullptr);
}

TEST(ObcOptionsEqual, DetectsEveryFieldChange) {
  const ob::ObcOptions base;
  EXPECT_TRUE(ob::obc_options_equal(base, ob::ObcOptions{}));
  auto differs = [&](auto mutate) {
    ob::ObcOptions o;
    mutate(o);
    return !ob::obc_options_equal(base, o);
  };
  EXPECT_TRUE(differs([](ob::ObcOptions& o) { o.feast.annulus_r = 3.0; }));
  EXPECT_TRUE(differs([](ob::ObcOptions& o) { o.beyn.seed = 1; }));
  EXPECT_TRUE(differs([](ob::ObcOptions& o) { o.shift_invert.sigma = {}; }));
  EXPECT_TRUE(differs([](ob::ObcOptions& o) { o.decimation.eta = 1e-6; }));
  EXPECT_TRUE(differs([](ob::ObcOptions& o) { o.boundary.pinv_ridge = 0.1; }));
  EXPECT_TRUE(differs([](ob::ObcOptions& o) { o.contact_shift = 0.2; }));
}

TEST(BoundaryCache, CachedSolveSkipsLeadEigenproblemBitIdentically) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = df::assemble_device(lead, 8, std::vector<double>(8, 0.0));
  ob::BoundaryCache cache;
  tr::EnergyPointOptions opt;
  opt.obc = tr::ObcAlgorithm::kShiftInvert;
  opt.solver = tr::SolverAlgorithm::kBlockLU;
  opt.boundary_cache = &cache;
  opt.k_index = 3;

  const auto before = ob::boundary_solve_count();
  const auto first = tr::solve_energy_point(dm, lead, folded, -0.5, opt);
  EXPECT_EQ(ob::boundary_solve_count(), before + 1);
  const auto second = tr::solve_energy_point(dm, lead, folded, -0.5, opt);
  EXPECT_EQ(ob::boundary_solve_count(), before + 1);  // served from cache
  EXPECT_EQ(cache.stats().hits, 1u);

  // Bit-identical, not merely close: the cached Boundary is the same
  // object the first evaluation produced.
  EXPECT_EQ(first.transmission, second.transmission);
  EXPECT_EQ(first.transmission_caroli, second.transmission_caroli);
  EXPECT_EQ(first.num_propagating, second.num_propagating);

  // An uncached control run must agree exactly as well.
  tr::EnergyPointOptions plain = opt;
  plain.boundary_cache = nullptr;
  const auto control = tr::solve_energy_point(dm, lead, folded, -0.5, plain);
  EXPECT_EQ(control.transmission, first.transmission);
  EXPECT_EQ(control.transmission_caroli, first.transmission_caroli);
}

// --------------------------------------------- broadening default (eta) --

TEST(Decimation, SingleAuthoritativeEtaDefault) {
  // DecimationOptions' own default is the one true broadening; the old
  // ObcOptions override (1e-7 shadowing a 1e-6 header default) is gone.
  EXPECT_EQ(ob::DecimationOptions{}.eta, 1e-7);
  EXPECT_EQ(ob::ObcOptions{}.decimation.eta, 1e-7);
}

TEST(Decimation, RealAxisRejectsNonPositiveEta) {
  // On the real axis the surface Green's function has poles at the lead
  // bands: eta <= 0 is rejected loudly instead of diverging quietly.
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto strategy = ob::make_obc_strategy("decimation");
  for (const double eta : {0.0, -1e-9}) {
    ob::ObcOptions opts;
    opts.decimation.eta = eta;
    EXPECT_THROW(strategy->boundary(lead, folded, cplx{-1.0, 0.0}, opts),
                 std::invalid_argument)
        << "eta = " << eta;
  }
  // Off-axis (contour) energies carry their own Im(E): eta = 0 is fine.
  ob::ObcOptions contour;
  contour.decimation.eta = 0.0;
  const auto bnd =
      strategy->boundary(lead, folded, cplx{-1.0, 0.05}, contour);
  EXPECT_EQ(bnd.sigma_l.rows(), 1);
}
