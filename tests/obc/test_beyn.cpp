// Beyn contour-integral OBC solver tests: cross-validated against the
// shift-and-invert reference and the analytic 1-D chain self-energy.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/hamiltonian.hpp"
#include "numeric/blas.hpp"
#include "obc/beyn.hpp"
#include "obc/decimation.hpp"
#include "obc/self_energy.hpp"
#include "obc/shift_invert.hpp"

namespace df = omenx::dft;
namespace nm = omenx::numeric;
namespace ob = omenx::obc;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

df::LeadBlocks chain_lead(double t = -1.0) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  lead.h[0] = CMatrix(1, 1);
  lead.h[1] = CMatrix{{cplx{t}}};
  lead.s[0] = CMatrix::identity(1);
  lead.s[1] = CMatrix(1, 1);
  return lead;
}

df::LeadBlocks random_lead(idx s, unsigned seed) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  CMatrix a = nm::random_cmatrix(s, s, seed);
  lead.h[0] = a + nm::dagger(a);
  lead.h[1] = nm::random_cmatrix(s, s, seed + 1);
  for (idx i = 0; i < s; ++i) lead.h[1](i, i) += cplx{2.0};
  lead.s[0] = CMatrix::identity(s);
  lead.s[1] = CMatrix(s, s);
  return lead;
}

}  // namespace


TEST(Beyn, OutOfBandUnitCirclePair) {
  // random_lead at E = 6 (mostly evanescent): the thin annulus encloses two
  // |lambda| ~ 1 modes with independent eigenvectors — within method A's
  // rank-s capacity.
  const auto lead = random_lead(3, 33);
  ob::BeynOptions opt;
  opt.annulus_r = 1.5;
  const auto modes = ob::compute_modes_beyn(lead, cplx{6.0}, opt);
  ASSERT_EQ(modes.lambda.size(), 2u);
  for (const auto lam : modes.lambda) EXPECT_NEAR(std::abs(lam), 1.0, 1e-6);
}

TEST(Beyn, MatchesShiftInvertInsideAnnulus) {
  const auto lead = random_lead(3, 33);
  const cplx e{6.0};
  const auto all = ob::compute_modes_shift_invert(lead, e);
  ob::BeynOptions opt;
  opt.annulus_r = 1.5;
  ob::BeynStats stats;
  const auto beyn = ob::compute_modes_beyn(lead, e, opt, &stats);
  idx inside = 0;
  for (const auto lam : all.lambda) {
    const double m = std::abs(lam);
    if (m >= 1.0 / opt.annulus_r && m <= opt.annulus_r) ++inside;
  }
  EXPECT_EQ(static_cast<idx>(beyn.lambda.size()), inside);
  EXPECT_LT(stats.max_residual, 1e-6);
  for (const auto lam : beyn.lambda) {
    double best = 1e9;
    for (const auto ref : all.lambda)
      best = std::min(best, std::abs(lam - ref));
    EXPECT_LT(best, 1e-6);
  }
}

TEST(Beyn, MethodACapacityIsBlockSize) {
  // The single-orbital chain carries a reciprocal mode pair (lambda and
  // 1/lambda): two modes in any symmetric annulus, above method A's rank-s
  // capacity (s = 1).  Beyn must not return spurious pairs.
  const auto lead = chain_lead();
  ob::BeynOptions opt;
  opt.annulus_r = 10.0;
  opt.probe_columns = 1;
  const auto modes = ob::compute_modes_beyn(lead, cplx{-1.0}, opt);
  EXPECT_LE(modes.lambda.size(), 1u);
}

TEST(Beyn, SelfEnergyMatchesAnnulusTruncatedShiftInvert) {
  // Beyn (method A) resolves at most s modes inside the contour; compare
  // against shift-and-invert restricted to the same annulus, which is the
  // apples-to-apples truncated-Sigma reference.
  const auto lead = random_lead(3, 33);
  // Outside the band most modes are evanescent; a thin annulus encloses two
  // propagating-like modes (<= s, within method A's reach).
  const cplx e{6.0};
  const double r = 1.5;
  ob::BeynOptions opt;
  opt.annulus_r = r;
  const auto beyn_modes = ob::compute_modes_beyn(lead, e, opt);
  auto si_modes = ob::compute_modes_shift_invert(lead, e);
  // Drop shift-invert modes outside the annulus.
  ob::LeadModes truncated;
  truncated.vectors = CMatrix(si_modes.vectors.rows(),
                              static_cast<idx>(si_modes.lambda.size()));
  idx kept = 0;
  for (idx c = 0; c < static_cast<idx>(si_modes.lambda.size()); ++c) {
    const double m = std::abs(si_modes.lambda[static_cast<std::size_t>(c)]);
    if (m < 1.0 / r || m > r) continue;
    truncated.lambda.push_back(si_modes.lambda[static_cast<std::size_t>(c)]);
    truncated.velocity.push_back(
        si_modes.velocity[static_cast<std::size_t>(c)]);
    truncated.kind.push_back(si_modes.kind[static_cast<std::size_t>(c)]);
    for (idx i = 0; i < si_modes.vectors.rows(); ++i)
      truncated.vectors(i, kept) = si_modes.vectors(i, c);
    ++kept;
  }
  truncated.vectors = truncated.vectors.block(0, 0, truncated.vectors.rows(),
                                              kept);
  ASSERT_EQ(beyn_modes.lambda.size(), truncated.lambda.size());
  const auto ops = ob::lead_operators(df::fold_lead(lead), e);
  const auto bnd_beyn = ob::build_boundary(beyn_modes, ops);
  const auto bnd_ref = ob::build_boundary(truncated, ops);
  EXPECT_LT(nm::max_abs_diff(bnd_beyn.sigma_l, bnd_ref.sigma_l), 1e-5);
  EXPECT_LT(nm::max_abs_diff(bnd_beyn.sigma_r, bnd_ref.sigma_r), 1e-5);
}

TEST(Beyn, EmptyAnnulusGivesNoModes) {
  // Far outside the band, a razor-thin annulus holds no modes.
  const auto lead = chain_lead();
  ob::BeynOptions opt;
  opt.annulus_r = 1.0001;
  const auto modes = ob::compute_modes_beyn(lead, cplx{5.0}, opt);
  EXPECT_EQ(modes.lambda.size(), 0u);
}
