// End-to-end tests of the N-terminal contact pipeline through the
// Simulator and the distribution engine:
//   * the symmetric-limit parity suite — a two-identical-contacts layout
//     spelled out explicitly must be *bit-identical* (EXPECT_EQ, no
//     tolerance) to the implicit classic pipeline, across world sizes
//     {1, 2, 4} and with work stealing on and off;
//   * 3-terminal sweeps — pairwise T_pq, Buettiker terminal currents with
//     sum_p I_p = 0 to machine rounding, per-contact charge;
//   * per-contact boundary caching — dissimilar leads cache independently
//     and a one-contact shift change invalidates only that contact;
//   * construction-time layout validation (std::invalid_argument before
//     any engine world exists).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "omen/simulator.hpp"
#include "transport/bands.hpp"
#include "transport/contacts.hpp"

namespace lt = omenx::lattice;
namespace om = omenx::omen;
namespace tr = omenx::transport;
using omenx::numeric::idx;

namespace {

lt::Structure chain_structure(idx cells, double cell_length = 0.5,
                              bool periodic = false) {
  lt::Structure s;
  s.cell_atoms = {{lt::Species::kLi, {0.0, 0.0, 0.0}}};
  s.cell_length = cell_length;
  s.num_cells = cells;
  s.name = "multi-terminal test chain";
  if (periodic) s.periodicity = lt::Periodicity::kZ;
  return s;
}

om::SimulationConfig chain_config(idx cells, idx nk = 1) {
  om::SimulationConfig cfg;
  cfg.structure = chain_structure(cells, 0.5, nk > 1);
  cfg.build.cutoff_nm = 1.0;  // NBW = 2: folded supercells, 4 device blocks
  cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = tr::SolverAlgorithm::kBlockLU;
  cfg.num_k = nk;
  cfg.num_devices = 2;
  return cfg;
}

// The classic source/drain pair written out explicitly.
std::vector<om::ContactConfig> explicit_pair(double shift = 0.0) {
  std::vector<om::ContactConfig> cs(2);
  cs[0].block = 0;
  cs[0].shift = shift;
  cs[1].block = tr::kLastBlock;
  cs[1].shift = shift;
  return cs;
}

std::vector<double> band_grid(om::Simulator& sim, double step = 0.17) {
  const auto win = tr::band_window(sim.bands(9));
  std::vector<double> grid;
  for (double e = win.emin + 0.05; e < win.emax; e += step) grid.push_back(e);
  return grid;
}

}  // namespace

// ------------------------------------------------------- symmetric limit --

TEST(MultiTerminal, ExplicitSymmetricPairBitIdenticalAcrossWorldSizes) {
  // The acceptance bar of the refactor: spelling the classic layout out as
  // a ContactSet must change *nothing* — same spectra to the last bit, at
  // every world size and with stealing on/off, because the engine routes
  // the symmetric pair through literally the pre-refactor pipeline.
  const idx nk = 3;
  om::SimulationConfig ref_cfg = chain_config(8, nk);
  om::Simulator reference(ref_cfg);
  const auto grid = band_grid(reference);
  ASSERT_GE(grid.size(), 4u);
  const auto base = reference.transmission_spectrum(grid);

  for (const int ranks : {1, 2, 4}) {
    for (const bool stealing : {true, false}) {
      om::SimulationConfig cfg = chain_config(8, nk);
      cfg.contacts = explicit_pair();
      cfg.num_ranks = ranks;
      cfg.work_stealing = stealing;
      om::Simulator sim(cfg);
      const auto sp = sim.transmission_spectrum(grid);
      ASSERT_EQ(sp.transmission.size(), base.transmission.size());
      EXPECT_TRUE(sp.t_matrix.empty());  // pairwise table is >= 3-terminal
      for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(sp.transmission[i], base.transmission[i])
            << "ranks=" << ranks << " stealing=" << stealing << " point "
            << i;
        EXPECT_EQ(sp.propagating[i], base.propagating[i]);
      }
    }
  }
}

TEST(MultiTerminal, ExplicitSymmetricPairChargeBitIdentical) {
  om::SimulationConfig ref_cfg = chain_config(12);
  om::Simulator reference(ref_cfg);
  const auto win = tr::band_window(reference.bands(9));
  const double mu = 0.5 * (win.emin + win.emax);
  std::vector<double> grid;
  for (double e = mu - 0.4; e <= mu + 0.4; e += 0.05) grid.push_back(e);
  std::vector<double> barrier(12, 0.0);
  barrier[5] = barrier[6] = 0.6;
  const auto base = reference.charge_density(grid, mu, mu - 0.3, &barrier);

  for (const int ranks : {1, 2, 4}) {
    om::SimulationConfig cfg = chain_config(12);
    cfg.contacts = explicit_pair();
    cfg.num_ranks = ranks;
    om::Simulator sim(cfg);
    // Scalar-mu wrapper and the per-terminal overload agree bit-for-bit
    // with the implicit classic pipeline.
    const auto wrapped = sim.charge_density(grid, mu, mu - 0.3, &barrier);
    const auto multi =
        sim.charge_density(grid, std::vector<double>{mu, mu - 0.3}, &barrier);
    ASSERT_EQ(wrapped.size(), base.size());
    ASSERT_EQ(multi.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(wrapped[i], base[i]) << "ranks=" << ranks << " cell " << i;
      EXPECT_EQ(multi[i], base[i]) << "ranks=" << ranks << " cell " << i;
    }
  }
}

TEST(MultiTerminal, ExplicitSymmetricPairScfParity) {
  // The full SCF stack (transfer characteristics, warm starts, per-contact
  // shifts through ScfOptions::contact_shifts) must reproduce the classic
  // run bit-for-bit when the terminals are identical.
  const lt::DeviceRegions regions{4, 4, 4};
  const std::vector<double> vgs{0.0, 0.15};
  const double vds = 0.1;

  om::Simulator reference(chain_config(12));
  const double mu_s = 0.5 * (tr::band_window(reference.bands(9)).emin +
                             tr::band_window(reference.bands(9)).emax);
  std::vector<double> grid;
  for (double e = mu_s - 0.4; e <= mu_s + 0.4; e += 0.08) grid.push_back(e);
  omenx::poisson::ScfOptions scf;
  scf.max_iter = 6;
  scf.contact_shift = -0.05;
  const auto base =
      reference.transfer_characteristics(vgs, vds, regions, grid, mu_s, scf);

  om::SimulationConfig cfg = chain_config(12);
  cfg.contacts = explicit_pair();
  om::Simulator sim(cfg);
  omenx::poisson::ScfOptions nscf = scf;
  nscf.contact_shift = 0.0;
  nscf.contact_shifts = {-0.05, -0.05};  // per-terminal spelling
  const auto iv =
      sim.transfer_characteristics(vgs, vds, regions, grid, mu_s, nscf);
  ASSERT_EQ(iv.size(), base.size());
  for (std::size_t p = 0; p < base.size(); ++p) {
    EXPECT_EQ(iv[p].current, base[p].current) << "bias point " << p;
    EXPECT_EQ(iv[p].scf_iterations, base[p].scf_iterations);
    ASSERT_EQ(iv[p].potential.size(), base[p].potential.size());
    for (std::size_t c = 0; c < base[p].potential.size(); ++c)
      EXPECT_EQ(iv[p].potential[c], base[p].potential[c])
          << "bias point " << p << " cell " << c;
  }
}

// --------------------------------------------------------- three terminals --

TEST(MultiTerminal, ThreeTerminalCurrentsConserve) {
  // A third (probe) contact on an interior block: the Buettiker sum over
  // the pairwise T matrix must conserve current to machine rounding, for
  // both kMultiTerminal solver backends.
  for (const auto solver :
       {tr::SolverAlgorithm::kBlockLU, tr::SolverAlgorithm::kRgf}) {
    om::SimulationConfig cfg = chain_config(8);
    cfg.point.solver = solver;
    cfg.contacts.resize(3);
    cfg.contacts[0].block = 0;
    cfg.contacts[1].block = 1;  // interior probe
    cfg.contacts[2].block = tr::kLastBlock;
    om::Simulator sim(cfg);
    const auto grid = band_grid(sim, 0.11);
    ASSERT_GE(grid.size(), 4u);
    const auto win = tr::band_window(sim.bands(9));
    const double mid = 0.5 * (win.emin + win.emax);
    const std::vector<double> mu{mid + 0.15, mid, mid - 0.15};

    const auto sp = sim.transmission_spectrum(grid);
    ASSERT_EQ(sp.t_matrix.size(), grid.size());
    double t_total = 0.0;
    for (const auto& row : sp.t_matrix) {
      ASSERT_EQ(row.size(), 9u);
      for (const double t : row) {
        EXPECT_GE(t, -1e-10);  // Caroli traces are non-negative
        t_total += t;
      }
    }
    EXPECT_GT(t_total, 0.1);  // the probe actually couples

    const auto currents = sim.terminal_currents(grid, mu, nullptr);
    ASSERT_EQ(currents.size(), 3u);
    double total = 0.0, scale = 0.0;
    for (const double i : currents) {
      total += i;
      scale = std::max(scale, std::abs(i));
    }
    EXPECT_GT(scale, 1e-6);  // a biased device actually conducts
    EXPECT_LE(std::abs(total), 1e-12 * std::max(1.0, scale))
        << "solver=" << static_cast<int>(solver);
  }
}

TEST(MultiTerminal, ThreeTerminalBitIdenticalAcrossWorldSizes) {
  // The multi-attach path has its own wire protocol (extra lead streams,
  // strided T-matrix gather, solo spatial announcements): every world size
  // and stealing mode must reproduce the flat loop bit-for-bit.
  auto make_cfg = [] {
    om::SimulationConfig cfg = chain_config(8, /*nk=*/3);
    cfg.contacts.resize(3);
    cfg.contacts[0].block = 0;
    cfg.contacts[1].block = 2;
    cfg.contacts[2].block = tr::kLastBlock;
    return cfg;
  };
  om::Simulator reference(make_cfg());
  const auto grid = band_grid(reference);
  const auto base = reference.transmission_spectrum(grid);
  ASSERT_EQ(base.t_matrix.size(), grid.size());

  const auto win = tr::band_window(reference.bands(9));
  const double mid = 0.5 * (win.emin + win.emax);
  std::vector<double> cgrid;
  for (double e = mid - 0.4; e <= mid + 0.4; e += 0.08) cgrid.push_back(e);
  const std::vector<double> mu{mid + 0.1, mid, mid - 0.1};
  const auto base_charge = reference.charge_density(cgrid, mu, nullptr);

  for (const int ranks : {2, 4}) {
    for (const bool stealing : {true, false}) {
      om::SimulationConfig cfg = make_cfg();
      cfg.num_ranks = ranks;
      cfg.work_stealing = stealing;
      om::Simulator sim(cfg);
      const auto sp = sim.transmission_spectrum(grid);
      ASSERT_EQ(sp.t_matrix.size(), base.t_matrix.size());
      for (std::size_t ie = 0; ie < base.t_matrix.size(); ++ie) {
        ASSERT_EQ(sp.t_matrix[ie].size(), base.t_matrix[ie].size());
        for (std::size_t q = 0; q < base.t_matrix[ie].size(); ++q)
          EXPECT_EQ(sp.t_matrix[ie][q], base.t_matrix[ie][q])
              << "ranks=" << ranks << " stealing=" << stealing << " ie=" << ie
              << " pq=" << q;
      }
      const auto charge = sim.charge_density(cgrid, mu, nullptr);
      ASSERT_EQ(charge.size(), base_charge.size());
      for (std::size_t c = 0; c < base_charge.size(); ++c)
        EXPECT_EQ(charge[c], base_charge[c])
            << "ranks=" << ranks << " stealing=" << stealing << " cell " << c;
    }
  }
}

TEST(MultiTerminal, ProbeChargeRespondsToProbePotential) {
  // Sanity on the per-contact occupations: raising only the probe's mu
  // adds (probe-injected) charge and the total must grow.
  om::SimulationConfig cfg = chain_config(8);
  cfg.contacts.resize(3);
  cfg.contacts[0].block = 0;
  cfg.contacts[1].block = 1;
  cfg.contacts[2].block = tr::kLastBlock;
  om::Simulator sim(cfg);
  const auto win = tr::band_window(sim.bands(9));
  const double mid = 0.5 * (win.emin + win.emax);
  std::vector<double> grid;
  for (double e = mid - 0.4; e <= mid + 0.4; e += 0.08) grid.push_back(e);

  const auto low =
      sim.charge_density(grid, std::vector<double>{mid, mid - 0.3, mid},
                         nullptr);
  const auto high =
      sim.charge_density(grid, std::vector<double>{mid, mid + 0.3, mid},
                         nullptr);
  double sum_low = 0.0, sum_high = 0.0;
  for (const double q : low) sum_low += q;
  for (const double q : high) sum_high += q;
  EXPECT_GT(sum_high, sum_low + 1e-6);
}

// ------------------------------------------------ per-contact cache reuse --

TEST(MultiTerminal, DissimilarLeadsCacheIndependently) {
  // Source uses the device's own lead, drain a dissimilar material (longer
  // cell, same orbital count).  Each contact caches under its own id, and
  // changing one contact's shift must re-solve *only* that contact's
  // boundaries.
  om::SimulationConfig cfg = chain_config(8);
  cfg.contacts = explicit_pair();
  cfg.contacts[1].material = chain_structure(8, 0.6);
  om::Simulator sim(cfg);
  const auto grid = band_grid(sim);
  const auto ne = grid.size();

  (void)sim.transmission_spectrum(grid);
  auto per_run = sim.last_sweep_stats().contact_cache_stats;
  ASSERT_EQ(per_run.size(), 2u);
  EXPECT_EQ(per_run[0].misses, ne);
  EXPECT_EQ(per_run[1].misses, ne);
  EXPECT_EQ(per_run[0].hits, 0u);
  EXPECT_EQ(per_run[1].hits, 0u);

  // Identical re-sweep: everything is served from the cache.
  (void)sim.transmission_spectrum(grid);
  per_run = sim.last_sweep_stats().contact_cache_stats;
  ASSERT_EQ(per_run.size(), 2u);
  EXPECT_EQ(per_run[0].hits, ne);
  EXPECT_EQ(per_run[1].hits, ne);
  EXPECT_EQ(per_run[0].misses, 0u);
  EXPECT_EQ(per_run[1].misses, 0u);

  // A shift change on contact 0 drops contact 0's entries only: the drain
  // keeps serving every boundary from the cache.
  sim.set_contact_shift(0, 0.05);
  (void)sim.transmission_spectrum(grid);
  per_run = sim.last_sweep_stats().contact_cache_stats;
  ASSERT_EQ(per_run.size(), 2u);
  EXPECT_EQ(per_run[0].misses, ne);
  EXPECT_EQ(per_run[0].hits, 0u);
  EXPECT_EQ(per_run[1].hits, ne);
  EXPECT_EQ(per_run[1].misses, 0u);
  EXPECT_GE(sim.contact_boundary_cache_stats(0).invalidations, 1u);
  EXPECT_EQ(sim.contact_boundary_cache_stats(1).invalidations, 0u);
}

// ------------------------------------------------------------- validation --

TEST(MultiTerminal, ConstructionRejectsBadLayouts) {
  // One terminal is not a circuit.
  {
    om::SimulationConfig cfg = chain_config(8);
    cfg.contacts.resize(1);
    cfg.contacts[0].block = 0;
    EXPECT_THROW(om::Simulator{cfg}, std::invalid_argument);
  }
  // Duplicate attachment blocks (kLastBlock aliases the last block).
  {
    om::SimulationConfig cfg = chain_config(8);
    cfg.contacts.resize(2);
    cfg.contacts[0].block = 3;
    cfg.contacts[1].block = tr::kLastBlock;
    EXPECT_THROW(om::Simulator{cfg}, std::invalid_argument);
  }
  // Out-of-range block.
  {
    om::SimulationConfig cfg = chain_config(8);
    cfg.contacts = explicit_pair();
    cfg.contacts[1].block = 99;
    EXPECT_THROW(om::Simulator{cfg}, std::invalid_argument);
  }
}

TEST(MultiTerminal, ApiValidation) {
  om::SimulationConfig cfg = chain_config(8);
  cfg.contacts.resize(3);
  cfg.contacts[0].block = 0;
  cfg.contacts[1].block = 1;
  cfg.contacts[2].block = tr::kLastBlock;
  om::Simulator sim(cfg);
  const std::vector<double> grid{-1.0, 0.0, 1.0};

  EXPECT_THROW(sim.set_contact_shift(7, 0.1), std::invalid_argument);
  // The scalar-mu charge wrapper has no third reservoir to occupy.
  EXPECT_THROW(sim.charge_density(grid, 0.1, -0.1, nullptr),
               std::invalid_argument);
  // One mu per terminal.
  EXPECT_THROW(
      sim.charge_density(grid, std::vector<double>{0.1, -0.1}, nullptr),
      std::invalid_argument);
  EXPECT_THROW(
      sim.terminal_currents(grid, std::vector<double>{0.1, -0.1}, nullptr),
      std::invalid_argument);
  // The contour quadrature is a two-reservoir construction.
  EXPECT_THROW(
      sim.charge_density(grid, std::vector<double>{0.1, 0.0, -0.1}, nullptr,
                         omenx::charge::QuadratureAlgorithm::kContour),
      std::invalid_argument);
}
