// Batched-execution engine tests: fusing queued (k, E) tasks into batched
// numeric::Backend calls (EngineConfig::batch_tasks) must be invisible to
// the physics — spectra and charge bit-identical to the unbatched path at
// every world size, with and without work stealing — while the sweep stats
// prove batches actually happened.  These tests carry the engine ctest
// label, so the CI ThreadSanitizer job covers the asynchronous OBC
// prefetch running against the batched device phase.
#include <gtest/gtest.h>

#include <vector>

#include "dft/hamiltonian.hpp"
#include "numeric/blas.hpp"
#include "omen/engine.hpp"
#include "omen/simulator.hpp"
#include "transport/bands.hpp"

namespace df = omenx::dft;
namespace lt = omenx::lattice;
namespace nm = omenx::numeric;
namespace om = omenx::omen;
namespace tr = omenx::transport;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

df::LeadBlocks synthetic_lead(idx s, unsigned seed) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  CMatrix h0 = nm::random_cmatrix(s, s, seed);
  lead.h[0] = (h0 + nm::dagger(h0)) * cplx{0.25};
  lead.h[1] = nm::random_cmatrix(s, s, seed + 1) * cplx{0.4};
  lead.s[0] = CMatrix::identity(s);
  lead.s[1] = CMatrix(s, s);
  return lead;
}

tr::EnergyPointOptions cheap_options() {
  tr::EnergyPointOptions opts;
  opts.obc = tr::ObcAlgorithm::kDecimation;
  opts.solver = tr::SolverAlgorithm::kBlockLU;
  opts.want_density = false;
  opts.want_current = false;
  return opts;
}

/// Hot-k request: k0 carries most of the energies, so a 4-rank world must
/// steal to balance — the stolen tasks land in foreign batches.
om::SweepRequest hot_k_request(const std::vector<df::LeadBlocks>& leads,
                               idx cells) {
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point = cheap_options();
  req.energies.resize(leads.size());
  for (int ie = 0; ie < 24; ++ie)
    req.energies[0].push_back(-2.0 + 0.15 * ie);
  for (std::size_t k = 1; k < leads.size(); ++k)
    for (int ie = 0; ie < 3; ++ie)
      req.energies[k].push_back(-1.0 + 0.5 * ie);
  return req;
}

void expect_same_spectra(const om::SweepResult& a, const om::SweepResult& b,
                         const char* what) {
  ASSERT_EQ(a.caroli.size(), b.caroli.size());
  for (std::size_t k = 0; k < a.caroli.size(); ++k)
    for (std::size_t ie = 0; ie < a.caroli[k].size(); ++ie) {
      // EXPECT_EQ on doubles: bit-identical, not merely close.
      EXPECT_EQ(a.caroli[k][ie], b.caroli[k][ie])
          << what << " k=" << k << " ie=" << ie;
      EXPECT_EQ(a.transmission[k][ie], b.transmission[k][ie])
          << what << " k=" << k << " ie=" << ie;
      EXPECT_EQ(a.propagating[k][ie], b.propagating[k][ie])
          << what << " k=" << k << " ie=" << ie;
    }
}

}  // namespace

TEST(EngineBatch, FlatBatchedBitIdenticalForEveryBatchCapacity) {
  const idx s = 5, cells = 10;
  std::vector<df::LeadBlocks> leads;
  for (unsigned k = 0; k < 4; ++k) leads.push_back(synthetic_lead(s, 51 + 3 * k));
  const om::SweepRequest req = hot_k_request(leads, cells);

  om::EngineConfig ucfg;
  ucfg.batch_tasks = false;
  ucfg.cache_boundaries = false;
  om::Engine unbatched(ucfg);
  const auto ref = unbatched.run(req);
  EXPECT_EQ(ref.stats.batches_issued, 0);

  idx total = 0;
  for (const auto& grid : req.energies)
    total += static_cast<idx>(grid.size());

  // Capacity 1 (every task its own batch), an uneven divisor, and the
  // default: chunk boundaries move, results must not.
  for (const int cap : {1, 5, 16}) {
    om::EngineConfig bcfg;
    bcfg.batch_tasks = true;
    bcfg.max_batch = cap;
    bcfg.cache_boundaries = false;
    om::Engine batched(bcfg);
    const auto got = batched.run(req);
    expect_same_spectra(got, ref, "flat batched");
    EXPECT_GT(got.stats.batches_issued, 0) << "cap=" << cap;
    EXPECT_GE(got.stats.mean_batch_size, 1.0) << "cap=" << cap;
    EXPECT_LE(got.stats.mean_batch_size, static_cast<double>(cap))
        << "cap=" << cap;
    // Every task's boundary went through the prefetch stage exactly once.
    EXPECT_EQ(got.stats.prefetch_hits + got.stats.prefetch_misses, total)
        << "cap=" << cap;
  }
}

TEST(EngineBatch, DistributedBatchedBitIdenticalAcrossWorldsAndStealing) {
  const idx s = 5, cells = 10;
  std::vector<df::LeadBlocks> leads;
  for (unsigned k = 0; k < 4; ++k) leads.push_back(synthetic_lead(s, 71 + 3 * k));
  const om::SweepRequest req = hot_k_request(leads, cells);

  om::EngineConfig ucfg;
  ucfg.batch_tasks = false;
  ucfg.cache_boundaries = false;
  om::Engine unbatched(ucfg);
  const auto ref = unbatched.run(req);

  for (const int ranks : {1, 2, 4}) {
    om::EngineConfig bcfg;
    bcfg.num_ranks = ranks;
    bcfg.batch_tasks = true;
    bcfg.max_batch = 6;
    bcfg.cache_boundaries = false;
    om::Engine batched(bcfg);
    const auto got = batched.run(req);
    if (ranks == 4) EXPECT_GT(got.stats.tasks_stolen, 0);
    expect_same_spectra(got, ref, "distributed batched");
    EXPECT_GT(got.stats.batches_issued, 0) << "ranks=" << ranks;
    EXPECT_GE(got.stats.mean_batch_size, 1.0) << "ranks=" << ranks;
  }
}

TEST(EngineBatch, PrefetchHitsCachedBoundariesOnRepeatSweeps) {
  const idx s = 4, cells = 8;
  std::vector<df::LeadBlocks> leads{synthetic_lead(s, 91)};
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point = cheap_options();
  req.energies.resize(1);
  for (int ie = 0; ie < 12; ++ie)
    req.energies[0].push_back(-1.5 + 0.22 * ie);

  om::EngineConfig cfg;  // batching and caching both on
  om::Engine engine(cfg);
  const auto first = engine.run(req);
  EXPECT_EQ(first.stats.prefetch_hits, 0);
  EXPECT_EQ(first.stats.prefetch_misses, 12);
  const auto second = engine.run(req);
  EXPECT_EQ(second.stats.prefetch_hits, 12);
  EXPECT_EQ(second.stats.prefetch_misses, 0);
  expect_same_spectra(second, first, "cached resweep");
}

TEST(EngineBatch, NonBatchableSolverDegradesToUnbatchedPath) {
  // BCR advertises no kBatchable: batch_tasks stays inert (the flat loop
  // keeps its per-task parallelism) and the spectra still match.
  const idx s = 4, cells = 8;
  std::vector<df::LeadBlocks> leads{synthetic_lead(s, 33)};
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point = cheap_options();
  req.point.solver = tr::SolverAlgorithm::kBcr;
  req.energies.resize(1);
  for (int ie = 0; ie < 8; ++ie)
    req.energies[0].push_back(-1.5 + 0.3 * ie);

  om::EngineConfig ucfg;
  ucfg.batch_tasks = false;
  ucfg.cache_boundaries = false;
  om::Engine unbatched(ucfg);
  const auto ref = unbatched.run(req);

  om::EngineConfig bcfg;
  bcfg.batch_tasks = true;
  bcfg.cache_boundaries = false;
  om::Engine batched(bcfg);
  const auto got = batched.run(req);
  expect_same_spectra(got, ref, "bcr");
  EXPECT_EQ(got.stats.batches_issued, 0);

  // The distributed leader still routes through the pipeline (its scalar
  // fallback), which must also be invisible.
  om::EngineConfig dcfg;
  dcfg.num_ranks = 2;
  dcfg.batch_tasks = true;
  dcfg.cache_boundaries = false;
  om::Engine dist(dcfg);
  const auto dgot = dist.run(req);
  expect_same_spectra(dgot, ref, "bcr distributed");
  EXPECT_EQ(dgot.stats.batches_issued, 0);
}

TEST(EngineBatch, ChargeBitIdenticalBatchedVsUnbatchedAcrossWorlds) {
  // The two-contact ballistic charge — the observable the SCF loop feeds
  // back — through the full simulator stack, batched vs unbatched, at
  // world sizes 1, 2, and 4.
  lt::Structure st;
  st.cell_atoms = {{lt::Species::kLi, {0.0, 0.0, 0.0}}};
  st.cell_length = 0.5;
  st.num_cells = 10;
  st.name = "batch charge chain";

  om::SimulationConfig base_cfg;
  base_cfg.structure = st;
  base_cfg.build.cutoff_nm = 1.0;
  base_cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  base_cfg.point.solver = tr::SolverAlgorithm::kBlockLU;
  base_cfg.num_devices = 2;

  om::SimulationConfig ref_cfg = base_cfg;
  ref_cfg.batch_tasks = false;
  om::Simulator reference(ref_cfg);
  const auto bands = reference.bands(9);
  const auto window = tr::band_window(bands);
  std::vector<double> grid;
  for (double e = window.emin + 0.02; e < window.emax; e += 0.3)
    grid.push_back(e);
  ASSERT_GE(grid.size(), 4u);
  const double mu = 0.5 * (window.emin + window.emax);
  const auto ref = reference.charge_density(grid, mu, mu - 0.2, nullptr);

  for (const int ranks : {1, 2, 4}) {
    om::SimulationConfig cfg = base_cfg;
    cfg.batch_tasks = true;
    cfg.max_batch = 4;
    cfg.num_ranks = ranks;
    om::Simulator sim(cfg);
    const auto charge = sim.charge_density(grid, mu, mu - 0.2, nullptr);
    ASSERT_EQ(charge.size(), ref.size());
    for (std::size_t c = 0; c < charge.size(); ++c)
      EXPECT_EQ(charge[c], ref[c]) << "ranks=" << ranks << " cell " << c;
  }
}
