// Engine device-offload tests: routing the batched device phase through
// EngineConfig::backend = "device" (the emulated DevicePool) must be
// invisible to the physics — spectra bit-identical to the "host" backend at
// every world size, including under work stealing — while the sweep stats
// prove offloaded batches, operand residency across repeat sweeps (the SCF
// story), and dropping H2D traffic after warm-up.  Carries the engine and
// device ctest labels so the CI ThreadSanitizer job covers the device
// worker threads running the batched kernels.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "dft/hamiltonian.hpp"
#include "lattice/structure.hpp"
#include "numeric/blas.hpp"
#include "omen/engine.hpp"
#include "omen/simulator.hpp"
#include "parallel/device.hpp"
#include "perf/machine.hpp"
#include "transport/bands.hpp"

namespace df = omenx::dft;
namespace lt = omenx::lattice;
namespace nm = omenx::numeric;
namespace om = omenx::omen;
namespace pf = omenx::perf;
namespace pp = omenx::parallel;
namespace tr = omenx::transport;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

df::LeadBlocks synthetic_lead(idx s, unsigned seed) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  CMatrix h0 = nm::random_cmatrix(s, s, seed);
  lead.h[0] = (h0 + nm::dagger(h0)) * cplx{0.25};
  lead.h[1] = nm::random_cmatrix(s, s, seed + 1) * cplx{0.4};
  lead.s[0] = CMatrix::identity(s);
  lead.s[1] = CMatrix(s, s);
  return lead;
}

tr::EnergyPointOptions cheap_options() {
  tr::EnergyPointOptions opts;
  opts.obc = tr::ObcAlgorithm::kDecimation;
  opts.solver = tr::SolverAlgorithm::kBlockLU;
  opts.want_density = false;
  opts.want_current = false;
  return opts;
}

om::SweepRequest hot_k_request(const std::vector<df::LeadBlocks>& leads,
                               idx cells) {
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point = cheap_options();
  req.energies.resize(leads.size());
  for (int ie = 0; ie < 24; ++ie)
    req.energies[0].push_back(-2.0 + 0.15 * ie);
  for (std::size_t k = 1; k < leads.size(); ++k)
    for (int ie = 0; ie < 3; ++ie)
      req.energies[k].push_back(-1.0 + 0.5 * ie);
  return req;
}

void expect_same_spectra(const om::SweepResult& a, const om::SweepResult& b,
                         const char* what) {
  ASSERT_EQ(a.caroli.size(), b.caroli.size());
  for (std::size_t k = 0; k < a.caroli.size(); ++k)
    for (std::size_t ie = 0; ie < a.caroli[k].size(); ++ie) {
      // EXPECT_EQ on doubles: bit-identical, not merely close.
      EXPECT_EQ(a.caroli[k][ie], b.caroli[k][ie])
          << what << " k=" << k << " ie=" << ie;
      EXPECT_EQ(a.transmission[k][ie], b.transmission[k][ie])
          << what << " k=" << k << " ie=" << ie;
      EXPECT_EQ(a.propagating[k][ie], b.propagating[k][ie])
          << what << " k=" << k << " ie=" << ie;
    }
}

}  // namespace

TEST(DeviceOffload, SpectraBitIdenticalToHostAcrossPoolAndWorldSizes) {
  // The acceptance bar: the device-routed sweep at pool sizes 1/2/4 and
  // world sizes 1/2/4 (the hot k forces stealing at 4 ranks) agrees
  // bit-for-bit with the host backend.
  const idx s = 5, cells = 10;
  std::vector<df::LeadBlocks> leads;
  for (unsigned k = 0; k < 4; ++k)
    leads.push_back(synthetic_lead(s, 151 + 3 * k));
  const om::SweepRequest req = hot_k_request(leads, cells);

  om::EngineConfig hcfg;
  hcfg.backend = "host";
  hcfg.cache_boundaries = false;
  om::Engine host(hcfg);
  const auto ref = host.run(req);
  EXPECT_EQ(ref.stats.device_batches, 0);
  EXPECT_EQ(ref.stats.h2d_bytes, 0.0);

  for (const int devices : {1, 2, 4}) {
    pp::DevicePool pool(devices);
    om::EngineConfig dcfg;
    dcfg.backend = "device";
    dcfg.cache_boundaries = false;
    om::Engine engine(dcfg, &pool);
    const auto got = engine.run(req);
    expect_same_spectra(got, ref, "device flat");
    EXPECT_GT(got.stats.device_batches, 0) << "devices=" << devices;
    EXPECT_GT(got.stats.h2d_bytes, 0.0) << "devices=" << devices;
    EXPECT_GT(got.stats.d2h_bytes, 0.0) << "devices=" << devices;
    ASSERT_EQ(got.stats.device_busy_seconds.size(),
              static_cast<std::size_t>(devices));
  }

  for (const int ranks : {1, 2, 4}) {
    pp::DevicePool pool(4);
    om::EngineConfig dcfg;
    dcfg.backend = "device";
    dcfg.cache_boundaries = false;
    dcfg.num_ranks = ranks;
    om::Engine engine(dcfg, &pool);
    const auto got = engine.run(req);
    if (ranks == 4) EXPECT_GT(got.stats.tasks_stolen, 0);
    expect_same_spectra(got, ref, "device distributed");
    EXPECT_GT(got.stats.device_batches, 0) << "ranks=" << ranks;
  }
}

TEST(DeviceOffload, ResidencyHitsOnRepeatSweepsAndH2dDrops) {
  // The SCF outer loop re-sweeps identical (k, E) grids: from the second
  // sweep every staged operand (lead self-energies, boundary RHS) must hit
  // device residency — zero misses — and the per-sweep H2D traffic must
  // drop to just the re-streamed system matrices.
  const idx s = 5, cells = 10;
  std::vector<df::LeadBlocks> leads{synthetic_lead(s, 201)};
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point = cheap_options();
  req.energies.resize(1);
  for (int ie = 0; ie < 12; ++ie)
    req.energies[0].push_back(-1.5 + 0.22 * ie);

  pp::DevicePool pool(2);
  om::EngineConfig cfg;
  cfg.backend = "device";
  om::Engine engine(cfg, &pool);

  const auto first = engine.run(req);
  EXPECT_GT(first.stats.residency_misses, 0);
  EXPECT_EQ(first.stats.residency_hits, 0);

  const auto second = engine.run(req);
  EXPECT_EQ(second.stats.residency_misses, 0);
  EXPECT_EQ(second.stats.residency_hits, first.stats.residency_misses);
  EXPECT_LT(second.stats.h2d_bytes, first.stats.h2d_bytes);
  EXPECT_GT(second.stats.h2d_bytes, 0.0);  // A matrices still stream
  expect_same_spectra(second, first, "resident resweep");

  const auto third = engine.run(req);
  EXPECT_EQ(third.stats.residency_misses, 0);
  EXPECT_EQ(third.stats.h2d_bytes, second.stats.h2d_bytes);
}

TEST(DeviceOffload, LeadChangeInvalidatesDeviceResidency) {
  // Different lead Hamiltonians under the same (k, E) ids would alias the
  // resident operands: the engine must drop residency together with the
  // boundary caches when the leads hash changes.
  const idx s = 4, cells = 8;
  std::vector<df::LeadBlocks> leads{synthetic_lead(s, 211)};
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point = cheap_options();
  req.energies = {{-1.0, -0.5, 0.0, 0.5}};

  pp::DevicePool pool(2);
  om::EngineConfig cfg;
  cfg.backend = "device";
  om::Engine engine(cfg, &pool);
  engine.run(req);
  const auto warm = engine.run(req);
  EXPECT_EQ(warm.stats.residency_misses, 0);

  std::vector<df::LeadBlocks> other{synthetic_lead(s, 212)};
  req.leads = &other;
  const auto swapped = engine.run(req);
  EXPECT_GT(swapped.stats.residency_misses, 0);
  EXPECT_EQ(swapped.stats.residency_hits, 0);

  // And the post-swap physics matches a fresh host reference.
  om::EngineConfig fresh_cfg;
  fresh_cfg.backend = "host";
  fresh_cfg.cache_boundaries = false;
  om::Engine fresh(fresh_cfg);
  expect_same_spectra(swapped, fresh.run(req), "post-swap");
}

TEST(DeviceOffload, AutoRoutesByCrossoverAndStaysBitIdentical) {
  // "auto" picks per shape bucket via perf::estimate_batch_seconds on the
  // host MachineSpec; whatever it picks must be invisible to the physics.
  const idx s = 5, cells = 10;
  std::vector<df::LeadBlocks> leads;
  for (unsigned k = 0; k < 2; ++k)
    leads.push_back(synthetic_lead(s, 221 + 3 * k));
  const om::SweepRequest req = hot_k_request(leads, cells);

  om::EngineConfig hcfg;
  hcfg.backend = "host";
  hcfg.cache_boundaries = false;
  om::Engine host(hcfg);
  const auto ref = host.run(req);

  pp::DevicePool pool(2);
  om::EngineConfig acfg;
  acfg.backend = "auto";
  acfg.cache_boundaries = false;
  om::Engine engine(acfg, &pool);
  expect_same_spectra(engine.run(req), ref, "auto");

  // The crossover model itself: more streams than lanes favors the device,
  // fewer favors the host lanes; an empty device side never wins.
  const pf::MachineSpec spec = pf::MachineSpec::host();
  const pf::BatchShape shape{10, 32, 64};
  const auto wide = pf::estimate_batch_seconds(spec, shape, 64,
                                               /*host_lanes=*/2,
                                               /*devices=*/16);
  EXPECT_TRUE(wide.device_wins());
  const auto narrow = pf::estimate_batch_seconds(spec, shape, 64,
                                                 /*host_lanes=*/16,
                                                 /*devices=*/1);
  EXPECT_FALSE(narrow.device_wins());
  const auto none = pf::estimate_batch_seconds(spec, shape, 64, 8, 0);
  EXPECT_FALSE(none.device_wins());
}

TEST(DeviceOffload, DeviceWithoutPoolDegradesToHost) {
  // backend = "device" on an engine built without a pool cannot offload:
  // the sweep must still run (host path) with zero device counters.
  const idx s = 4, cells = 8;
  std::vector<df::LeadBlocks> leads{synthetic_lead(s, 231)};
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point = cheap_options();
  req.energies = {{-1.0, 0.0, 1.0}};

  om::EngineConfig cfg;
  cfg.backend = "device";
  om::Engine engine(cfg);  // no pool
  const auto got = engine.run(req);
  EXPECT_EQ(got.stats.device_batches, 0);
  EXPECT_EQ(got.stats.h2d_bytes, 0.0);

  om::EngineConfig hcfg;
  hcfg.backend = "host";
  om::Engine host(hcfg);
  expect_same_spectra(got, host.run(req), "no-pool device");
}

TEST(DeviceOffload, UnknownBackendNameThrows) {
  std::vector<df::LeadBlocks> leads{synthetic_lead(4, 241)};
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = 8;
  req.potential.assign(8, 0.0);
  req.point = cheap_options();
  req.energies = {{0.0, 0.5}};

  om::EngineConfig cfg;
  cfg.backend = "no-such-backend";
  om::Engine engine(cfg);
  EXPECT_THROW(engine.run(req), std::invalid_argument);

  // Distributed worlds must also fail loudly, without deadlock.
  om::EngineConfig dcfg;
  dcfg.backend = "no-such-backend";
  dcfg.num_ranks = 2;
  om::Engine dist(dcfg);
  EXPECT_THROW(dist.run(req), std::invalid_argument);
}

TEST(DeviceOffload, SimulatorPlumbsBackendChoice) {
  // The simulator-level knob: "device" and "host" produce bit-identical
  // spectra on the quickstart-style chain, and the device run reports
  // offloaded batches through last_sweep_stats().
  lt::Structure st;
  st.cell_atoms = {{lt::Species::kLi, {0.0, 0.0, 0.0}}};
  st.cell_length = 0.5;
  st.num_cells = 8;
  st.name = "offload chain";

  om::SimulationConfig base;
  base.structure = st;
  base.build.cutoff_nm = 1.0;
  base.point.obc = tr::ObcAlgorithm::kShiftInvert;
  base.point.solver = tr::SolverAlgorithm::kBlockLU;
  base.num_devices = 2;

  om::SimulationConfig hcfg = base;
  hcfg.backend = "host";
  om::Simulator host(hcfg);
  const auto window = tr::band_window(host.bands(9));
  std::vector<double> grid;
  for (double e = window.emin + 0.05; e < window.emax; e += 0.25)
    grid.push_back(e);
  ASSERT_GE(grid.size(), 4u);
  const auto ref = host.transmission_spectrum(grid);

  om::SimulationConfig dcfg = base;
  dcfg.backend = "device";
  om::Simulator sim(dcfg);
  const auto sp = sim.transmission_spectrum(grid);
  ASSERT_EQ(sp.transmission.size(), ref.transmission.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(sp.transmission[i], ref.transmission[i]) << i;
    EXPECT_EQ(sp.propagating[i], ref.propagating[i]) << i;
  }
  EXPECT_GT(sim.last_sweep_stats().device_batches, 0);
  EXPECT_GT(sim.last_sweep_stats().h2d_bytes, 0.0);
}
