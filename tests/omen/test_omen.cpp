#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dft/hamiltonian.hpp"
#include "numeric/blas.hpp"
#include "omen/io.hpp"
#include "omen/scheduler.hpp"
#include "omen/simulator.hpp"
#include "transport/bands.hpp"

namespace df = omenx::dft;
namespace lt = omenx::lattice;
namespace nm = omenx::numeric;
namespace om = omenx::omen;
namespace pp = omenx::parallel;
namespace tr = omenx::transport;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

df::LeadBlocks chain_lead(double t = -1.0, double onsite = 0.0) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  lead.h[0] = CMatrix{{cplx{onsite}}};
  lead.h[1] = CMatrix{{cplx{t}}};
  lead.s[0] = CMatrix::identity(1);
  lead.s[1] = CMatrix(1, 1);
  return lead;
}

// A synthetic 1-orbital-per-cell structure backed by the chain Hamiltonian:
// used to exercise the Simulator cheaply.
lt::Structure chain_structure(idx cells) {
  lt::Structure s;
  s.cell_atoms = {{lt::Species::kLi, {0.0, 0.0, 0.0}}};
  s.cell_length = 0.5;
  s.num_cells = cells;
  s.name = "test chain";
  return s;
}

}  // namespace

TEST(OmenIo, RoundTripLeadBlocks) {
  const auto lead = chain_lead(-1.3, 0.2);
  const std::string path = "/tmp/omenx_test_lead.bin";
  om::write_lead_blocks(path, lead);
  const auto back = om::read_lead_blocks(path);
  ASSERT_EQ(back.h.size(), lead.h.size());
  EXPECT_LT(nm::max_abs_diff(back.h[0], lead.h[0]), 1e-15);
  EXPECT_LT(nm::max_abs_diff(back.h[1], lead.h[1]), 1e-15);
  EXPECT_LT(nm::max_abs_diff(back.s[0], lead.s[0]), 1e-15);
  std::remove(path.c_str());
}

TEST(OmenIo, BadMagicRejected) {
  const std::string path = "/tmp/omenx_test_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a lead blocks file";
  }
  EXPECT_THROW(om::read_lead_blocks(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(OmenIo, MissingFileThrows) {
  EXPECT_THROW(om::read_lead_blocks("/tmp/definitely_missing_omenx.bin"),
               std::runtime_error);
}

TEST(Scheduler, ProportionalAllocation) {
  // 3 k points with loads 100 / 200 / 100 over 8 groups -> 2 / 4 / 2.
  const auto alloc = om::allocate_groups({100, 200, 100}, 8);
  ASSERT_EQ(alloc.size(), 3u);
  EXPECT_EQ(alloc[0], 2);
  EXPECT_EQ(alloc[1], 4);
  EXPECT_EQ(alloc[2], 2);
}

TEST(Scheduler, EveryKGetsAtLeastOneGroup) {
  const auto alloc = om::allocate_groups({1, 1000, 1}, 4);
  for (const int g : alloc) EXPECT_GE(g, 1);
  int total = 0;
  for (const int g : alloc) total += g;
  EXPECT_EQ(total, 4);
}

TEST(Scheduler, AllGroupsAssigned) {
  const auto loads = std::vector<idx>{2853, 2650, 3050, 2900, 2700};
  for (const int groups : {5, 16, 64, 301}) {
    const auto alloc = om::allocate_groups(loads, groups);
    int total = 0;
    for (const int g : alloc) total += g;
    EXPECT_EQ(total, groups) << groups;
  }
}

TEST(Scheduler, DynamicBeatsUniformOnImbalancedLoads) {
  // The motivation for OMEN's dynamic allocation [45]: k-dependent energy
  // counts make a uniform split inefficient.
  const std::vector<idx> loads{400, 100, 100, 100};
  const auto dynamic = om::allocate_groups(loads, 28);
  const std::vector<int> uniform{7, 7, 7, 7};
  EXPECT_LT(om::allocation_makespan(loads, dynamic),
            om::allocation_makespan(loads, uniform));
  EXPECT_GT(om::allocation_efficiency(loads, dynamic), 0.9);
}

TEST(Scheduler, DeterministicUnderRemainderTies) {
  // Four equal loads over 6 groups: every k has remainder 0.5, so the two
  // bonus groups must go to the *lowest* k indices (stable ordering), and
  // every call must agree.
  const auto first = om::allocate_groups({10, 10, 10, 10}, 6);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first[0], 2);
  EXPECT_EQ(first[1], 2);
  EXPECT_EQ(first[2], 1);
  EXPECT_EQ(first[3], 1);
  for (int trial = 0; trial < 50; ++trial)
    EXPECT_EQ(om::allocate_groups({10, 10, 10, 10}, 6), first);
  // Ties in the leftover heap break the same way.
  const auto big = om::allocate_groups({7, 7, 7, 7, 7, 7, 7, 7}, 100);
  for (int trial = 0; trial < 10; ++trial)
    EXPECT_EQ(om::allocate_groups({7, 7, 7, 7, 7, 7, 7, 7}, 100), big);
  int total = 0;
  for (const int g : big) total += g;
  EXPECT_EQ(total, 100);
}

TEST(Scheduler, MakespanValidation) {
  EXPECT_THROW(om::allocation_makespan({10, 10}, {1}), std::invalid_argument);
  EXPECT_THROW(om::allocation_makespan({10}, {0}), std::invalid_argument);
  EXPECT_THROW(om::allocate_groups({10, 10}, 1), std::invalid_argument);
}

TEST(Scheduler, BroadcastLeadBlocks) {
  pp::CommWorld world(4);
  world.run([&](pp::Comm& comm) {
    df::LeadBlocks lead;
    if (comm.rank() == 0) lead = chain_lead(-0.8, 0.1);
    om::broadcast_lead_blocks(comm, lead);
    ASSERT_EQ(lead.h.size(), 2u);
    EXPECT_LT(std::abs(lead.h[1](0, 0) - cplx{-0.8}), 1e-15);
    EXPECT_LT(std::abs(lead.h[0](0, 0) - cplx{0.1}), 1e-15);
  });
}

TEST(Bands, ChainCosineBand) {
  df::FoldedLead lead;
  lead.h00 = CMatrix(1, 1);
  lead.h01 = CMatrix{{cplx{-1.0}}};
  lead.s00 = CMatrix::identity(1);
  lead.s01 = CMatrix(1, 1);
  const auto bs = tr::lead_band_structure(lead, 11);
  ASSERT_EQ(bs.k.size(), 11u);
  for (std::size_t ik = 0; ik < bs.k.size(); ++ik) {
    // E(k) = -2 cos k for t = -1... with H01 = t: E = 2 t cos k = -2 cos k.
    EXPECT_NEAR(bs.bands[ik][0], -2.0 * std::cos(bs.k[ik]), 1e-9);
  }
  const auto win = tr::band_window(bs);
  EXPECT_NEAR(win.emin, -2.0, 1e-9);
  EXPECT_NEAR(win.emax, 2.0, 1e-9);
  EXPECT_NEAR(tr::lowest_band_above(bs, -3.0), -2.0, 1e-9);
}

TEST(Simulator, ChainTransmissionSpectrum) {
  om::SimulationConfig cfg;
  cfg.structure = chain_structure(8);
  cfg.build.cutoff_nm = 1.0;  // NBW = 2: exercises supercell folding
  cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = tr::SolverAlgorithm::kBlockLU;
  cfg.num_devices = 2;
  // The Li single-s chain of the basis library: verify through bands that a
  // band exists, then T(E) == 1 inside it.
  om::Simulator sim(cfg);
  const auto bs = sim.bands(9);
  const auto win = tr::band_window(bs);
  ASSERT_LT(win.emin, win.emax);
  const double mid = 0.5 * (win.emin + win.emax);
  const auto sp = sim.transmission_spectrum({mid});
  ASSERT_EQ(sp.transmission.size(), 1u);
  EXPECT_GE(sp.transmission[0], 0.99);
  EXPECT_GE(sp.propagating[0], 1);
}

TEST(Simulator, PotentialBarrierReducesCurrent) {
  om::SimulationConfig cfg;
  cfg.structure = chain_structure(12);
  cfg.build.cutoff_nm = 1.0;  // NBW = 2
  cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = tr::SolverAlgorithm::kBlockLU;
  om::Simulator sim(cfg);
  const auto bs = sim.bands(9);
  const auto win = tr::band_window(bs);
  const double mu = 0.5 * (win.emin + win.emax);
  std::vector<double> grid;
  for (double e = mu - 0.3; e <= mu + 0.3; e += 0.05) grid.push_back(e);

  const double i_flat = sim.current(grid, mu + 0.1, mu - 0.1, nullptr);
  std::vector<double> barrier(12, 0.0);
  for (int i = 5; i < 8; ++i) barrier[static_cast<std::size_t>(i)] = 6.0;
  const double i_barrier = sim.current(grid, mu + 0.1, mu - 0.1, &barrier);
  EXPECT_GT(i_flat, 0.0);
  EXPECT_LT(i_barrier, 0.5 * i_flat);
}

TEST(Simulator, HamiltonianDimensionMatchesStructure) {
  om::SimulationConfig cfg;
  cfg.structure = chain_structure(10);
  om::Simulator sim(cfg);
  EXPECT_EQ(sim.hamiltonian_dimension(), 10);  // 1 orbital (Li s) x 10 cells
}
