#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "dft/hamiltonian.hpp"
#include "poisson/scf.hpp"
#include "numeric/blas.hpp"
#include "omen/io.hpp"
#include "omen/scheduler.hpp"
#include "omen/simulator.hpp"
#include "transport/bands.hpp"

namespace df = omenx::dft;
namespace lt = omenx::lattice;
namespace nm = omenx::numeric;
namespace om = omenx::omen;
namespace pp = omenx::parallel;
namespace ps = omenx::poisson;
namespace tr = omenx::transport;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

df::LeadBlocks chain_lead(double t = -1.0, double onsite = 0.0) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  lead.h[0] = CMatrix{{cplx{onsite}}};
  lead.h[1] = CMatrix{{cplx{t}}};
  lead.s[0] = CMatrix::identity(1);
  lead.s[1] = CMatrix(1, 1);
  return lead;
}

// A synthetic 1-orbital-per-cell structure backed by the chain Hamiltonian:
// used to exercise the Simulator cheaply.
lt::Structure chain_structure(idx cells) {
  lt::Structure s;
  s.cell_atoms = {{lt::Species::kLi, {0.0, 0.0, 0.0}}};
  s.cell_length = 0.5;
  s.num_cells = cells;
  s.name = "test chain";
  return s;
}

}  // namespace

TEST(OmenIo, RoundTripLeadBlocks) {
  const auto lead = chain_lead(-1.3, 0.2);
  const std::string path = "/tmp/omenx_test_lead.bin";
  om::write_lead_blocks(path, lead);
  const auto back = om::read_lead_blocks(path);
  ASSERT_EQ(back.h.size(), lead.h.size());
  EXPECT_LT(nm::max_abs_diff(back.h[0], lead.h[0]), 1e-15);
  EXPECT_LT(nm::max_abs_diff(back.h[1], lead.h[1]), 1e-15);
  EXPECT_LT(nm::max_abs_diff(back.s[0], lead.s[0]), 1e-15);
  std::remove(path.c_str());
}

TEST(OmenIo, BadMagicRejected) {
  const std::string path = "/tmp/omenx_test_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a lead blocks file";
  }
  EXPECT_THROW(om::read_lead_blocks(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(OmenIo, MissingFileThrows) {
  EXPECT_THROW(om::read_lead_blocks("/tmp/definitely_missing_omenx.bin"),
               std::runtime_error);
}

TEST(Scheduler, ProportionalAllocation) {
  // 3 k points with loads 100 / 200 / 100 over 8 groups -> 2 / 4 / 2.
  const auto alloc = om::allocate_groups({100, 200, 100}, 8);
  ASSERT_EQ(alloc.size(), 3u);
  EXPECT_EQ(alloc[0], 2);
  EXPECT_EQ(alloc[1], 4);
  EXPECT_EQ(alloc[2], 2);
}

TEST(Scheduler, EveryKGetsAtLeastOneGroup) {
  const auto alloc = om::allocate_groups({1, 1000, 1}, 4);
  for (const int g : alloc) EXPECT_GE(g, 1);
  int total = 0;
  for (const int g : alloc) total += g;
  EXPECT_EQ(total, 4);
}

TEST(Scheduler, AllGroupsAssigned) {
  const auto loads = std::vector<idx>{2853, 2650, 3050, 2900, 2700};
  for (const int groups : {5, 16, 64, 301}) {
    const auto alloc = om::allocate_groups(loads, groups);
    int total = 0;
    for (const int g : alloc) total += g;
    EXPECT_EQ(total, groups) << groups;
  }
}

TEST(Scheduler, DynamicBeatsUniformOnImbalancedLoads) {
  // The motivation for OMEN's dynamic allocation [45]: k-dependent energy
  // counts make a uniform split inefficient.
  const std::vector<idx> loads{400, 100, 100, 100};
  const auto dynamic = om::allocate_groups(loads, 28);
  const std::vector<int> uniform{7, 7, 7, 7};
  EXPECT_LT(om::allocation_makespan(loads, dynamic),
            om::allocation_makespan(loads, uniform));
  EXPECT_GT(om::allocation_efficiency(loads, dynamic), 0.9);
}

TEST(Scheduler, DeterministicUnderRemainderTies) {
  // Four equal loads over 6 groups: every k has remainder 0.5, so the two
  // bonus groups must go to the *lowest* k indices (stable ordering), and
  // every call must agree.
  const auto first = om::allocate_groups({10, 10, 10, 10}, 6);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first[0], 2);
  EXPECT_EQ(first[1], 2);
  EXPECT_EQ(first[2], 1);
  EXPECT_EQ(first[3], 1);
  for (int trial = 0; trial < 50; ++trial)
    EXPECT_EQ(om::allocate_groups({10, 10, 10, 10}, 6), first);
  // Ties in the leftover heap break the same way.
  const auto big = om::allocate_groups({7, 7, 7, 7, 7, 7, 7, 7}, 100);
  for (int trial = 0; trial < 10; ++trial)
    EXPECT_EQ(om::allocate_groups({7, 7, 7, 7, 7, 7, 7, 7}, 100), big);
  int total = 0;
  for (const int g : big) total += g;
  EXPECT_EQ(total, 100);
}

TEST(Scheduler, MakespanValidation) {
  EXPECT_THROW(om::allocation_makespan({10, 10}, {1}), std::invalid_argument);
  EXPECT_THROW(om::allocation_makespan({10}, {0}), std::invalid_argument);
  EXPECT_THROW(om::allocate_groups({10, 10}, 1), std::invalid_argument);
}

TEST(Scheduler, BroadcastLeadBlocks) {
  pp::CommWorld world(4);
  world.run([&](pp::Comm& comm) {
    df::LeadBlocks lead;
    if (comm.rank() == 0) lead = chain_lead(-0.8, 0.1);
    om::broadcast_lead_blocks(comm, lead);
    ASSERT_EQ(lead.h.size(), 2u);
    EXPECT_LT(std::abs(lead.h[1](0, 0) - cplx{-0.8}), 1e-15);
    EXPECT_LT(std::abs(lead.h[0](0, 0) - cplx{0.1}), 1e-15);
  });
}

TEST(Bands, ChainCosineBand) {
  df::FoldedLead lead;
  lead.h00 = CMatrix(1, 1);
  lead.h01 = CMatrix{{cplx{-1.0}}};
  lead.s00 = CMatrix::identity(1);
  lead.s01 = CMatrix(1, 1);
  const auto bs = tr::lead_band_structure(lead, 11);
  ASSERT_EQ(bs.k.size(), 11u);
  for (std::size_t ik = 0; ik < bs.k.size(); ++ik) {
    // E(k) = -2 cos k for t = -1... with H01 = t: E = 2 t cos k = -2 cos k.
    EXPECT_NEAR(bs.bands[ik][0], -2.0 * std::cos(bs.k[ik]), 1e-9);
  }
  const auto win = tr::band_window(bs);
  EXPECT_NEAR(win.emin, -2.0, 1e-9);
  EXPECT_NEAR(win.emax, 2.0, 1e-9);
  EXPECT_NEAR(tr::lowest_band_above(bs, -3.0), -2.0, 1e-9);
}

TEST(Simulator, ChainTransmissionSpectrum) {
  om::SimulationConfig cfg;
  cfg.structure = chain_structure(8);
  cfg.build.cutoff_nm = 1.0;  // NBW = 2: exercises supercell folding
  cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = tr::SolverAlgorithm::kBlockLU;
  cfg.num_devices = 2;
  // The Li single-s chain of the basis library: verify through bands that a
  // band exists, then T(E) == 1 inside it.
  om::Simulator sim(cfg);
  const auto bs = sim.bands(9);
  const auto win = tr::band_window(bs);
  ASSERT_LT(win.emin, win.emax);
  const double mid = 0.5 * (win.emin + win.emax);
  const auto sp = sim.transmission_spectrum({mid});
  ASSERT_EQ(sp.transmission.size(), 1u);
  EXPECT_GE(sp.transmission[0], 0.99);
  EXPECT_GE(sp.propagating[0], 1);
}

TEST(Simulator, PotentialBarrierReducesCurrent) {
  om::SimulationConfig cfg;
  cfg.structure = chain_structure(12);
  cfg.build.cutoff_nm = 1.0;  // NBW = 2
  cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = tr::SolverAlgorithm::kBlockLU;
  om::Simulator sim(cfg);
  const auto bs = sim.bands(9);
  const auto win = tr::band_window(bs);
  const double mu = 0.5 * (win.emin + win.emax);
  std::vector<double> grid;
  for (double e = mu - 0.3; e <= mu + 0.3; e += 0.05) grid.push_back(e);

  const double i_flat = sim.current(grid, mu + 0.1, mu - 0.1, nullptr);
  std::vector<double> barrier(12, 0.0);
  for (int i = 5; i < 8; ++i) barrier[static_cast<std::size_t>(i)] = 6.0;
  const double i_barrier = sim.current(grid, mu + 0.1, mu - 0.1, &barrier);
  EXPECT_GT(i_flat, 0.0);
  EXPECT_LT(i_barrier, 0.5 * i_flat);
}

TEST(Simulator, HamiltonianDimensionMatchesStructure) {
  om::SimulationConfig cfg;
  cfg.structure = chain_structure(10);
  om::Simulator sim(cfg);
  EXPECT_EQ(sim.hamiltonian_dimension(), 10);  // 1 orbital (Li s) x 10 cells
}

namespace {

// Chain FET simulator used by the two-contact and SCF tests below.
om::SimulationConfig fet_config(idx cells) {
  om::SimulationConfig cfg;
  cfg.structure = chain_structure(cells);
  cfg.build.cutoff_nm = 1.0;  // NBW = 2
  cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = tr::SolverAlgorithm::kBlockLU;
  return cfg;
}

double band_mid(om::Simulator& sim) {
  const auto win = tr::band_window(sim.bands(9));
  return 0.5 * (win.emin + win.emax);
}

double max_parity_violation(const std::vector<double>& rho) {
  double out = 0.0;
  for (std::size_t i = 0; i < rho.size(); ++i)
    out = std::max(out, std::abs(rho[i] - rho[rho.size() - 1 - i]));
  return out;
}

}  // namespace

// Regression for the dropped drain contact ((void)mu_r): on a symmetric
// device at Vds > 0 the charge MUST move when mu_r moves.
TEST(Simulator, ChargeRespondsToDrainChemicalPotential) {
  om::Simulator sim(fet_config(12));
  const double mu = band_mid(sim);
  std::vector<double> grid;
  for (double e = mu - 0.4; e <= mu + 0.4; e += 0.05) grid.push_back(e);

  const auto equil = sim.charge_density(grid, mu, mu, nullptr);
  const auto biased = sim.charge_density(grid, mu, mu - 0.3, nullptr);
  ASSERT_EQ(equil.size(), 12u);
  double change = 0.0;
  for (std::size_t i = 0; i < equil.size(); ++i)
    change = std::max(change, std::abs(equil[i] - biased[i]));
  EXPECT_GT(change, 1e-3);
  // Draining the right contact removes occupation: less total charge.
  double sum_eq = 0.0, sum_b = 0.0;
  for (std::size_t i = 0; i < equil.size(); ++i) {
    sum_eq += equil[i];
    sum_b += biased[i];
  }
  EXPECT_LT(sum_b, sum_eq);
}

// Two-contact parity: with a mirror-symmetric device and barrier, the
// charge is symmetric at equilibrium (both contacts filled alike) and
// visibly asymmetric once Vds != 0 depopulates the drain-injected states.
TEST(Simulator, ChargeParityBreaksUnderDrainBias) {
  om::Simulator sim(fet_config(12));
  const double mu = band_mid(sim);
  std::vector<double> grid;
  for (double e = mu - 0.4; e <= mu + 0.4; e += 0.05) grid.push_back(e);
  // Symmetric barrier (cells 5 and 6 of 12): left/right injected densities
  // are mirror images, so parity can only break through the occupations.
  std::vector<double> barrier(12, 0.0);
  barrier[5] = barrier[6] = 1.0;

  const auto equil = sim.charge_density(grid, mu, mu, &barrier);
  EXPECT_LT(max_parity_violation(equil), 1e-8);

  const auto biased = sim.charge_density(grid, mu, mu - 0.3, &barrier);
  const double asym = max_parity_violation(biased);
  EXPECT_GT(asym, 1e-2);
  // The source side keeps its filled standing-wave charge; the drain side
  // loses the states above mu_r: more charge on the source half.
  double left = 0.0, right = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    left += biased[i];
    right += biased[11 - i];
  }
  EXPECT_GT(left, right);
}

// The closed [0, pi] k grid must carry trapezoidal BZ weights: a flat 1/nk
// average double-counts both zone edges.  Verified against the manually
// weighted per-k solves.
TEST(Simulator, KAverageUsesTrapezoidalBzWeights) {
  om::SimulationConfig cfg;
  lt::Structure s = chain_structure(6);
  s.periodicity = lt::Periodicity::kZ;
  s.z_period = 0.4;
  cfg.structure = s;
  cfg.build.cutoff_nm = 1.0;
  cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = tr::SolverAlgorithm::kBlockLU;
  cfg.num_k = 3;  // k = 0, pi/2, pi -> weights 1/4, 1/2, 1/4
  om::Simulator sim(cfg);

  const auto bs = sim.bands(9);
  const auto win = tr::band_window(bs);
  const double e = 0.5 * (win.emin + win.emax);

  double expected = 0.0, uniform = 0.0;
  const double wk[3] = {0.25, 0.5, 0.25};
  for (idx ik = 0; ik < 3; ++ik) {
    const auto& lead = sim.lead_blocks(ik);
    const auto folded = df::fold_lead(lead);
    const auto dm =
        df::assemble_device(lead, 6, std::vector<double>(6, 0.0));
    const auto res = tr::solve_energy_point(dm, lead, folded, e, cfg.point);
    const double t = res.num_propagating > 0 ? res.transmission : 0.0;
    expected += wk[ik] * t;
    uniform += t / 3.0;
  }

  const auto sp = sim.transmission_spectrum({e});
  ASSERT_EQ(sp.transmission.size(), 1u);
  EXPECT_NEAR(sp.transmission[0], expected, 1e-10);
  // The analytic discrimination: at band mid only the k = 0 zone edge
  // propagates (T(k) = {1, 0, 0}), so the trapezoid average is exactly 1/4
  // while the seed's flat average double-counted the edge to 1/3.
  EXPECT_NEAR(expected, 0.25, 1e-6);
  EXPECT_NEAR(uniform, 1.0 / 3.0, 1e-6);
  EXPECT_GT(std::abs(sp.transmission[0] - uniform), 0.05);
}

// Warm-started Anderson SCF across a bias sweep: same converged potentials
// as the cold linear loop, in at most half the total iterations.
TEST(Simulator, WarmAndersonSweepMatchesColdLinearInHalfTheIterations) {
  om::Simulator sim(fet_config(16));
  const auto win = tr::band_window(sim.bands(9));
  const double mu_s = win.emin + 0.1;
  const double vds = 0.2;
  std::vector<double> grid;
  for (double e = win.emin - 0.02; e <= mu_s + 0.3; e += 0.01)
    grid.push_back(e);
  const lt::DeviceRegions regions{5, 6, 5};
  const std::vector<double> vgs{-0.15, -0.05, 0.05, 0.15};

  ps::ScfOptions seed_like;
  seed_like.poisson.screening_length_cells = 2.0;
  seed_like.poisson.charge_coupling = 0.25;
  seed_like.tol = 1e-6;
  seed_like.charge_tol = 0.0;
  seed_like.mixing = 0.3;
  seed_like.max_iter = 200;
  seed_like.anderson_depth = 0;
  seed_like.warm_start = false;

  ps::ScfOptions accel = seed_like;
  accel.anderson_depth = 3;
  accel.warm_start = true;

  const auto cold = sim.transfer_characteristics(vgs, vds, regions, grid,
                                                 mu_s, seed_like);
  const auto warm =
      sim.transfer_characteristics(vgs, vds, regions, grid, mu_s, accel);
  ASSERT_EQ(cold.size(), vgs.size());
  ASSERT_EQ(warm.size(), vgs.size());
  int cold_total = 0, warm_total = 0;
  for (std::size_t i = 0; i < vgs.size(); ++i) {
    ASSERT_TRUE(cold[i].converged) << "cold point " << i;
    ASSERT_TRUE(warm[i].converged) << "warm point " << i;
    cold_total += cold[i].scf_iterations;
    warm_total += warm[i].scf_iterations;
    // Same converged potential: max |dV| below the loop tolerance.
    ASSERT_EQ(cold[i].potential.size(), warm[i].potential.size());
    double dv = 0.0;
    for (std::size_t c = 0; c < cold[i].potential.size(); ++c)
      dv = std::max(dv,
                    std::abs(cold[i].potential[c] - warm[i].potential[c]));
    EXPECT_LT(dv, 1e-5) << "bias point " << i;
    EXPECT_NEAR(cold[i].current, warm[i].current,
                1e-6 * std::max(1.0, std::abs(cold[i].current)));
  }
  EXPECT_LE(2 * warm_total, cold_total)
      << "warm " << warm_total << " vs cold " << cold_total;
}

// The adaptive grid must add points where the channel count steps (band
// edge) and follow the band edge as the potential shifts it.
TEST(Simulator, AdaptiveGridTracksBandEdge) {
  om::Simulator sim(fet_config(10));
  const auto win = tr::band_window(sim.bands(9));
  std::vector<double> base;
  for (double e = win.emin - 0.2; e <= win.emin + 0.4; e += 0.1)
    base.push_back(e);

  const auto flat =
      sim.adaptive_energy_grid(base, nullptr, 0.5, 1e-3);
  EXPECT_GT(flat.size(), base.size());
  // Finest interval must straddle the band edge.
  double best = 1e9, best_mid = 0.0;
  for (std::size_t i = 1; i < flat.size(); ++i)
    if (flat[i] - flat[i - 1] < best) {
      best = flat[i] - flat[i - 1];
      best_mid = 0.5 * (flat[i] + flat[i - 1]);
    }
  EXPECT_NEAR(best_mid, win.emin, 0.05);

  // A uniform potential shift moves the band edge by the same amount; the
  // refinement must follow it.
  const double shift = 0.15;
  const std::vector<double> pot(10, shift);
  const auto shifted = sim.adaptive_energy_grid(base, &pot, 0.5, 1e-3);
  best = 1e9;
  double shifted_mid = 0.0;
  for (std::size_t i = 1; i < shifted.size(); ++i)
    if (shifted[i] - shifted[i - 1] < best) {
      best = shifted[i] - shifted[i - 1];
      shifted_mid = 0.5 * (shifted[i] + shifted[i - 1]);
    }
  EXPECT_NEAR(shifted_mid, win.emin + shift, 0.05);
}
