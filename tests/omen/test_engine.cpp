// Tests for the distributed execution engine: the Fig. 9 rank hierarchy
// (momentum -> energy -> spatial), the shared work queue with stealing,
// and the collective result assembly.  Sweeps are checked bit-identical
// across CommWorld sizes {1, 2, 7} — the sizes the CI matrix runs under
// ThreadSanitizer.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "dft/hamiltonian.hpp"
#include "numeric/blas.hpp"
#include "omen/engine.hpp"
#include "omen/simulator.hpp"
#include "transport/bands.hpp"

namespace df = omenx::dft;
namespace lt = omenx::lattice;
namespace nm = omenx::numeric;
namespace om = omenx::omen;
namespace tr = omenx::transport;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

// A synthetic 1-orbital chain, z-periodic so the simulator builds a real
// multi-k momentum level.
lt::Structure chain_structure(idx cells, bool periodic = false) {
  lt::Structure s;
  s.cell_atoms = {{lt::Species::kLi, {0.0, 0.0, 0.0}}};
  s.cell_length = 0.5;
  s.num_cells = cells;
  s.name = "engine test chain";
  if (periodic) s.periodicity = lt::Periodicity::kZ;
  return s;
}

om::SimulationConfig chain_config(idx cells, idx nk) {
  om::SimulationConfig cfg;
  cfg.structure = chain_structure(cells, nk > 1);
  cfg.build.cutoff_nm = 1.0;  // NBW = 2: exercises supercell folding
  cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = tr::SolverAlgorithm::kBlockLU;
  cfg.num_k = nk;
  cfg.num_devices = 2;
  return cfg;
}

// Random-Hermitian lead blocks for driving the Engine API directly.
df::LeadBlocks synthetic_lead(idx s, unsigned seed) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  CMatrix h0 = nm::random_cmatrix(s, s, seed);
  lead.h[0] = (h0 + nm::dagger(h0)) * cplx{0.25};
  lead.h[1] = nm::random_cmatrix(s, s, seed + 1) * cplx{0.4};
  lead.s[0] = CMatrix::identity(s);
  lead.s[1] = CMatrix(s, s);
  return lead;
}

tr::EnergyPointOptions cheap_options() {
  tr::EnergyPointOptions opts;
  opts.obc = tr::ObcAlgorithm::kDecimation;
  opts.solver = tr::SolverAlgorithm::kBlockLU;
  opts.want_density = false;
  opts.want_current = false;
  return opts;
}

}  // namespace

TEST(Engine, SpectrumIdenticalAcrossWorldSizes) {
  // The acceptance bar: T(E) from the quickstart-style device must be
  // bit-identical for CommWorld sizes 1 (flat degenerate loop), 2, and 7.
  const idx nk = 3;
  om::SimulationConfig cfg = chain_config(8, nk);
  om::Simulator reference(cfg);
  const auto bands = reference.bands(9);
  const auto window = tr::band_window(bands);
  std::vector<double> grid;
  for (double e = window.emin + 0.05; e < window.emax; e += 0.21)
    grid.push_back(e);
  ASSERT_GE(grid.size(), 4u);
  const auto base = reference.transmission_spectrum(grid);
  EXPECT_EQ(reference.last_sweep_stats().ranks, 1);

  for (const int ranks : {2, 7}) {
    om::SimulationConfig dcfg = chain_config(8, nk);
    dcfg.num_ranks = ranks;
    om::Simulator sim(dcfg);
    const auto sp = sim.transmission_spectrum(grid);
    EXPECT_EQ(sim.last_sweep_stats().ranks, ranks);
    EXPECT_EQ(sim.last_sweep_stats().tasks_total,
              static_cast<idx>(grid.size()) * nk);
    ASSERT_EQ(sp.transmission.size(), base.transmission.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      EXPECT_DOUBLE_EQ(sp.transmission[i], base.transmission[i])
          << "ranks=" << ranks << " point " << i;
      EXPECT_EQ(sp.propagating[i], base.propagating[i])
          << "ranks=" << ranks << " point " << i;
    }
  }
}

TEST(Engine, MoreMomentaThanRanks) {
  // 5 k points on 2 ranks: each rank's group owns several momenta and the
  // queue must still drain every (k, E) exactly once.
  const idx nk = 5;
  om::SimulationConfig cfg = chain_config(6, nk);
  om::Simulator reference(cfg);
  const auto bands = reference.bands(9);
  const auto window = tr::band_window(bands);
  const double mid = 0.5 * (window.emin + window.emax);
  const std::vector<double> grid{mid - 0.2, mid, mid + 0.2};
  const auto base = reference.transmission_spectrum(grid);

  om::SimulationConfig dcfg = chain_config(6, nk);
  dcfg.num_ranks = 2;
  om::Simulator sim(dcfg);
  const auto sp = sim.transmission_spectrum(grid);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_DOUBLE_EQ(sp.transmission[i], base.transmission[i]);
}

TEST(Engine, WorkStealingBalancesImbalancedGrids) {
  // One hot k with 10x the energy points of the others: with stealing the
  // idle groups must take over a share of the hot k's tail (and fetch its
  // lead blocks, which they never owned); statically they may not.
  const idx s = 6, cells = 12;
  std::vector<df::LeadBlocks> leads;
  for (unsigned k = 0; k < 4; ++k) leads.push_back(synthetic_lead(s, 31 + 7 * k));

  om::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point = cheap_options();
  req.energies.resize(4);
  for (int ie = 0; ie < 40; ++ie)
    req.energies[0].push_back(-2.0 + 0.1 * ie);
  for (std::size_t k = 1; k < 4; ++k)
    for (int ie = 0; ie < 4; ++ie)
      req.energies[k].push_back(-1.0 + 0.5 * ie);

  om::EngineConfig scfg;
  scfg.num_ranks = 4;
  scfg.work_stealing = false;
  om::Engine static_engine(scfg);
  const auto st = static_engine.run(req);
  EXPECT_EQ(st.stats.tasks_stolen, 0);
  ASSERT_EQ(st.stats.tasks_per_rank.size(), 4u);
  // Without stealing the hot k's single group does all 40 of its points.
  EXPECT_EQ(*std::max_element(st.stats.tasks_per_rank.begin(),
                              st.stats.tasks_per_rank.end()),
            40);

  om::EngineConfig wcfg;
  wcfg.num_ranks = 4;
  om::Engine stealing_engine(wcfg);
  const auto dy = stealing_engine.run(req);
  EXPECT_GT(dy.stats.tasks_stolen, 0);
  EXPECT_LT(*std::max_element(dy.stats.tasks_per_rank.begin(),
                              dy.stats.tasks_per_rank.end()),
            40);
  EXPECT_EQ(std::accumulate(dy.stats.tasks_per_rank.begin(),
                            dy.stats.tasks_per_rank.end(), idx{0}),
            52);

  // Same numbers either way — scheduling must not change physics.
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t ie = 0; ie < req.energies[k].size(); ++ie)
      EXPECT_DOUBLE_EQ(dy.caroli[k][ie], st.caroli[k][ie]);
}

TEST(Engine, ForcedProtocolMatchesFlatLoop) {
  // flat_single_rank = false runs the full request/assign protocol on one
  // rank (coordinator + worker on the same thread pair) — the benchmark's
  // serial baseline.  It must agree bit-for-bit with the flat loop.
  std::vector<df::LeadBlocks> leads{synthetic_lead(5, 77)};
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = 10;
  req.potential.assign(10, 0.0);
  req.point = cheap_options();
  req.energies = {{-1.5, -0.5, 0.0, 0.5, 1.5}};

  om::Engine flat(om::EngineConfig{});
  om::EngineConfig pcfg;
  pcfg.flat_single_rank = false;
  om::Engine protocol(pcfg);
  const auto a = flat.run(req);
  const auto b = protocol.run(req);
  ASSERT_EQ(a.caroli[0].size(), b.caroli[0].size());
  for (std::size_t i = 0; i < a.caroli[0].size(); ++i)
    EXPECT_DOUBLE_EQ(a.caroli[0][i], b.caroli[0][i]);
}

TEST(Engine, ChargeDensityConsistentAcrossWorldSizes) {
  om::SimulationConfig cfg = chain_config(10, 1);
  cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  om::Simulator reference(cfg);
  const auto bands = reference.bands(9);
  const auto window = tr::band_window(bands);
  std::vector<double> grid;
  for (double e = window.emin + 0.02; e < window.emax; e += 0.3)
    grid.push_back(e);
  const double mu = 0.5 * (window.emin + window.emax);
  // Unequal contact potentials: the source and drain density weights
  // differ, so this also pins the distributed two-contact charge path.
  const auto base = reference.charge_density(grid, mu, mu - 0.2, nullptr);

  for (const int ranks : {2, 7}) {
    om::SimulationConfig dcfg = cfg;
    dcfg.num_ranks = ranks;
    om::Simulator sim(dcfg);
    const auto charge = sim.charge_density(grid, mu, mu - 0.2, nullptr);
    ASSERT_EQ(charge.size(), base.size());
    // Bit-identical, not merely close: per-task contributions are summed
    // in flat task order at the root, so work stealing moving tasks
    // between ranks must not change the rounding.
    for (std::size_t c = 0; c < charge.size(); ++c)
      EXPECT_DOUBLE_EQ(charge[c], base[c])
          << "ranks=" << ranks << " cell " << c;
  }
}

TEST(Engine, EnergyGroupWidthAndDeviceSlices) {
  // Width-2 energy groups: only group leaders pull tasks; members idle at
  // the spatial level but still hold the broadcast inputs and join the
  // assembly collectives.
  const idx nk = 2;
  om::SimulationConfig cfg = chain_config(8, nk);
  om::Simulator reference(cfg);
  const auto bands = reference.bands(9);
  const auto window = tr::band_window(bands);
  const double mid = 0.5 * (window.emin + window.emax);
  const std::vector<double> grid{mid - 0.1, mid, mid + 0.1, mid + 0.2};
  const auto base = reference.transmission_spectrum(grid);

  om::SimulationConfig dcfg = chain_config(8, nk);
  dcfg.num_ranks = 6;
  dcfg.ranks_per_energy_group = 2;
  om::Simulator sim(dcfg);
  const auto sp = sim.transmission_spectrum(grid);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_DOUBLE_EQ(sp.transmission[i], base.transmission[i]);
  // 6 ranks over 2 momentum groups, width 2 -> at most 3-4 leaders total;
  // at least one rank per group must have pulled nothing.
  const auto& tpr = sim.last_sweep_stats().tasks_per_rank;
  ASSERT_EQ(tpr.size(), 6u);
  EXPECT_EQ(std::accumulate(tpr.begin(), tpr.end(), idx{0}),
            static_cast<idx>(grid.size()) * nk);
}

TEST(Engine, SplitSolveBackendRunsDistributed) {
  // The SplitSolve path exercises the accelerator slices (spatial level).
  om::SimulationConfig cfg = chain_config(8, 1);
  cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = tr::SolverAlgorithm::kSplitSolve;
  cfg.point.partitions = 2;
  cfg.num_devices = 2;
  om::Simulator reference(cfg);
  const auto bands = reference.bands(9);
  const auto window = tr::band_window(bands);
  const double mid = 0.5 * (window.emin + window.emax);
  const std::vector<double> grid{mid - 0.15, mid, mid + 0.15};
  const auto base = reference.transmission_spectrum(grid);

  om::SimulationConfig dcfg = cfg;
  dcfg.num_ranks = 2;
  om::Simulator sim(dcfg);
  const auto sp = sim.transmission_spectrum(grid);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_DOUBLE_EQ(sp.transmission[i], base.transmission[i]);
}

TEST(Engine, TransferCharacteristicsThroughEngine) {
  // The SCF loop's charge and current evaluations both route through the
  // engine; a 2-rank run must land on the same I-V point as single-rank.
  om::SimulationConfig cfg = chain_config(12, 1);
  om::Simulator reference(cfg);
  const auto bands = reference.bands(9);
  const auto window = tr::band_window(bands);
  const double mu = 0.5 * (window.emin + window.emax);
  std::vector<double> grid;
  for (double e = mu - 0.3; e <= mu + 0.3; e += 0.1) grid.push_back(e);
  lt::DeviceRegions regions{4, 4, 4};
  omenx::poisson::ScfOptions scf;
  scf.max_iter = 6;

  const auto base = reference.transfer_characteristics({0.1}, 0.05, regions,
                                                       grid, mu, scf);
  om::SimulationConfig dcfg = cfg;
  dcfg.num_ranks = 2;
  om::Simulator sim(dcfg);
  const auto iv =
      sim.transfer_characteristics({0.1}, 0.05, regions, grid, mu, scf);
  ASSERT_EQ(iv.size(), 1u);
  EXPECT_EQ(iv[0].scf_iterations, base[0].scf_iterations);
  EXPECT_NEAR(iv[0].current, base[0].current,
              1e-6 * (1.0 + std::abs(base[0].current)));
}

TEST(Engine, RankErrorsPropagateWithoutDeadlock) {
  // A throwing stage on a leader rank must drain the queue protocol and
  // the assembly collectives, then rethrow on the caller — not hang the
  // coordinator in recv or rank 0 in service.join().  cells = 1 makes
  // assemble_device ("need at least 2 supercells") throw during every
  // leader's KData build, the earliest and most deadlock-prone stage.
  std::vector<df::LeadBlocks> leads{synthetic_lead(4, 11),
                                    synthetic_lead(4, 12)};
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = 1;
  req.potential.assign(1, 0.0);
  req.point = cheap_options();
  req.energies = {{0.0, 0.5}, {-0.5, 0.0, 0.5}};

  om::Engine flat(om::EngineConfig{});
  EXPECT_THROW(flat.run(req), std::invalid_argument);

  om::EngineConfig dcfg;
  dcfg.num_ranks = 4;
  om::Engine distributed(dcfg);
  EXPECT_THROW(distributed.run(req), std::invalid_argument);

  // Width-2 groups: non-leaders must also drain cleanly.
  om::EngineConfig wcfg;
  wcfg.num_ranks = 4;
  wcfg.ranks_per_energy_group = 2;
  om::Engine wide(wcfg);
  EXPECT_THROW(wide.run(req), std::invalid_argument);
}

TEST(Engine, BoundaryCacheReusedAcrossSweeps) {
  // The SCF outer loop re-sweeps identical (k, E) grids: the second sweep
  // must hit the per-rank boundary cache for every point, solve zero lead
  // eigenproblems, and still produce the first sweep's spectrum verbatim.
  om::SimulationConfig cfg = chain_config(8, 1);
  om::Simulator sim(cfg);
  const auto bands = sim.bands(9);
  const auto window = tr::band_window(bands);
  std::vector<double> grid;
  for (double e = window.emin + 0.05; e < window.emax; e += 0.2)
    grid.push_back(e);

  const auto first = sim.transmission_spectrum(grid);
  const auto after_first = sim.boundary_cache_stats();
  EXPECT_EQ(after_first.misses, grid.size());
  EXPECT_EQ(after_first.hits, 0u);

  const auto solves_before = omenx::obc::boundary_solve_count();
  const auto second = sim.transmission_spectrum(grid);
  EXPECT_EQ(omenx::obc::boundary_solve_count(), solves_before);
  EXPECT_EQ(sim.boundary_cache_stats().hits, grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_DOUBLE_EQ(second.transmission[i], first.transmission[i]);

  // The charge sweep revisits the same keys: still no new lead solves.
  const double mu = 0.5 * (window.emin + window.emax);
  sim.charge_density(grid, mu, mu - 0.1, nullptr);
  EXPECT_EQ(omenx::obc::boundary_solve_count(), solves_before);

  // Invalidation empties the cache; the next sweep recomputes.
  sim.invalidate_boundary_cache();
  sim.transmission_spectrum(grid);
  EXPECT_EQ(omenx::obc::boundary_solve_count(),
            solves_before + grid.size());
}

TEST(Engine, CachedSweepsBitIdenticalAcrossWorldSizesAndStealing) {
  // Caching must be invisible to the physics: cached runs at world sizes
  // 1/2/4 (the hot-k request forces stealing at 4 ranks) agree bit-for-bit
  // with the uncached flat reference, on first *and* repeat sweeps.
  const idx s = 5, cells = 10;
  std::vector<df::LeadBlocks> leads;
  for (unsigned k = 0; k < 4; ++k)
    leads.push_back(synthetic_lead(s, 51 + 3 * k));
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point = cheap_options();
  req.energies.resize(4);
  for (int ie = 0; ie < 24; ++ie)
    req.energies[0].push_back(-2.0 + 0.15 * ie);
  for (std::size_t k = 1; k < 4; ++k)
    for (int ie = 0; ie < 3; ++ie)
      req.energies[k].push_back(-1.0 + 0.5 * ie);

  om::EngineConfig ucfg;
  ucfg.cache_boundaries = false;
  om::Engine uncached(ucfg);
  const auto ref = uncached.run(req);

  for (const int ranks : {1, 2, 4}) {
    om::EngineConfig ccfg;
    ccfg.num_ranks = ranks;
    om::Engine cached(ccfg);
    const auto a = cached.run(req);
    const auto b = cached.run(req);  // second sweep: served from the cache
    if (ranks == 4) EXPECT_GT(a.stats.tasks_stolen, 0);
    for (std::size_t k = 0; k < 4; ++k)
      for (std::size_t ie = 0; ie < req.energies[k].size(); ++ie) {
        EXPECT_DOUBLE_EQ(a.caroli[k][ie], ref.caroli[k][ie])
            << "ranks=" << ranks;
        EXPECT_DOUBLE_EQ(b.caroli[k][ie], ref.caroli[k][ie])
            << "ranks=" << ranks << " (cached resweep)";
      }
    EXPECT_GT(cached.boundary_cache_stats().hits, 0u);
  }
}

TEST(Engine, SigmaOnlyObcDensityRequestFailsLoudlyAndDrains) {
  // Decimation provides no injection states: a charge-carrying sweep must
  // surface std::invalid_argument — from the flat loop and from every rank
  // topology — instead of silently integrating zero density (and the world
  // must drain, not hang).
  om::SimulationConfig cfg = chain_config(8, 1);
  cfg.point.obc = tr::ObcAlgorithm::kDecimation;
  om::Simulator reference(cfg);
  const auto bands = reference.bands(9);
  const auto window = tr::band_window(bands);
  const double mu = 0.5 * (window.emin + window.emax);
  const std::vector<double> grid{mu - 0.1, mu, mu + 0.1};
  EXPECT_THROW(reference.charge_density(grid, mu, mu, nullptr),
               std::invalid_argument);

  for (const int ranks : {2, 4}) {
    om::SimulationConfig dcfg = cfg;
    dcfg.num_ranks = ranks;
    if (ranks == 4) dcfg.ranks_per_energy_group = 2;
    om::Simulator sim(dcfg);
    EXPECT_THROW(sim.charge_density(grid, mu, mu, nullptr),
                 std::invalid_argument)
        << "ranks=" << ranks;
  }
}

TEST(Engine, ObcOptionChangeInvalidatesPersistentCaches) {
  // The cache key carries the backend but not its options: a run whose
  // ObcOptions differ from the previous run's must drop the cached
  // Boundaries instead of replaying entries computed under the old
  // annulus/eta/ridge.
  std::vector<df::LeadBlocks> leads{synthetic_lead(4, 71)};
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = 8;
  req.potential.assign(8, 0.0);
  req.point = cheap_options();
  req.energies = {{-1.0, -0.5, 0.0, 0.5}};

  om::Engine engine(om::EngineConfig{});
  engine.run(req);
  engine.run(req);  // same options: cache serves the sweep
  EXPECT_EQ(engine.boundary_cache_stats().hits, req.energies[0].size());
  EXPECT_EQ(engine.boundary_cache_stats().invalidations, 0u);

  req.point.obc_opts.decimation.eta = 1e-5;  // changed backend parameter
  const auto changed = engine.run(req);
  EXPECT_EQ(engine.boundary_cache_stats().invalidations, 1u);

  // The post-change results must match a fresh engine under the new
  // options — no stale-Boundary replay.
  om::EngineConfig fresh_cfg;
  fresh_cfg.cache_boundaries = false;
  om::Engine fresh(fresh_cfg);
  const auto ref = fresh.run(req);
  for (std::size_t ie = 0; ie < req.energies[0].size(); ++ie)
    EXPECT_DOUBLE_EQ(changed.caroli[0][ie], ref.caroli[0][ie]);

  // A different leads vector (different lead Hamiltonians under the same
  // (k, E) keys) must also drop the caches — and the swapped-leads sweep
  // must match its own uncached reference, not replay the old leads.
  std::vector<df::LeadBlocks> other_leads{synthetic_lead(4, 72)};
  const auto inval_before = engine.boundary_cache_stats().invalidations;
  req.leads = &other_leads;
  const auto swapped = engine.run(req);
  EXPECT_GT(engine.boundary_cache_stats().invalidations, inval_before);
  const auto swapped_ref = fresh.run(req);
  for (std::size_t ie = 0; ie < req.energies[0].size(); ++ie)
    EXPECT_DOUBLE_EQ(swapped.caroli[0][ie], swapped_ref.caroli[0][ie]);
}

TEST(Engine, ContactShiftChangeInvalidatesCache) {
  om::SimulationConfig cfg = chain_config(8, 1);
  om::Simulator sim(cfg);
  const auto bands = sim.bands(9);
  const auto window = tr::band_window(bands);
  const double v_shift = 0.15;
  std::vector<double> grid;
  for (double e = window.emin + 0.1; e < window.emax - 0.2; e += 0.25)
    grid.push_back(e);

  const auto base = sim.transmission_spectrum(grid);
  EXPECT_EQ(sim.boundary_cache_stats().invalidations, 0u);
  // The shift change invalidates at the *next sweep* — exactly once, even
  // when set repeatedly to the same new value.
  sim.set_contact_shift(v_shift);
  sim.set_contact_shift(v_shift);
  EXPECT_EQ(sim.boundary_cache_stats().invalidations, 0u);

  // Physics of the shift: leads at potential V with the device floated to
  // the same V is the pristine system at E - V.
  const std::vector<double> lifted(8, v_shift);
  std::vector<double> shifted_grid;
  for (const double e : grid) shifted_grid.push_back(e + v_shift);
  const auto shifted = sim.transmission_spectrum(shifted_grid, &lifted);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_NEAR(shifted.transmission[i], base.transmission[i], 1e-7) << i;
  // That sweep saw the changed shift: exactly one invalidation fired.
  EXPECT_EQ(sim.boundary_cache_stats().invalidations, 1u);

  // The SCF driver plumbs the shift from ScfOptions and invalidates only
  // on change (0.15 -> 0.0 here; a repeat sweep at the same shift must
  // keep its cached lead solves).
  lt::DeviceRegions regions{3, 2, 3};
  omenx::poisson::ScfOptions scf;
  scf.max_iter = 2;
  scf.contact_shift = 0.0;
  sim.transfer_characteristics({0.0}, 0.05, regions, grid,
                               0.5 * (window.emin + window.emax), scf);
  EXPECT_EQ(sim.boundary_cache_stats().invalidations, 2u);  // 0.15 -> 0.0
  sim.transfer_characteristics({0.0}, 0.05, regions, grid,
                               0.5 * (window.emin + window.emax), scf);
  EXPECT_EQ(sim.boundary_cache_stats().invalidations, 2u);
}

TEST(Engine, RejectsBadRequests) {
  om::Engine engine(om::EngineConfig{});
  om::SweepRequest req;
  EXPECT_THROW(engine.run(req), std::invalid_argument);  // null leads
  std::vector<df::LeadBlocks> leads{synthetic_lead(4, 3)};
  req.leads = &leads;
  EXPECT_THROW(engine.run(req), std::invalid_argument);  // no k grids
  req.energies = {{0.0}, {0.0}};
  EXPECT_THROW(engine.run(req), std::invalid_argument);  // fewer leads
  req.energies = {{0.0, 1.0}};
  req.density_weight = {{1.0}};
  EXPECT_THROW(engine.run(req), std::invalid_argument);  // weight shape
  EXPECT_THROW(om::Engine(om::EngineConfig{0, 1, true, true}),
               std::invalid_argument);
}

TEST(Engine, GreensTasksBitIdenticalAcrossWorldSizesAndStealing) {
  // Contour charge nodes ride the same queue as real-axis tasks: a hot k
  // full of Green's-function nodes must distribute, steal, and assemble
  // bit-identically to the flat loop at any world size.
  const idx s = 5, cells = 10;
  std::vector<df::LeadBlocks> leads;
  for (unsigned k = 0; k < 4; ++k)
    leads.push_back(synthetic_lead(s, 91 + 3 * k));
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point = cheap_options();
  req.energies.resize(4);  // no real-axis tasks at all: GF nodes only
  req.gf_nodes.resize(4);
  req.gf_weights.resize(4);
  for (int in = 0; in < 20; ++in) {
    req.gf_nodes[0].push_back(cplx{-1.5 + 0.12 * in, 0.3 + 0.01 * in});
    req.gf_weights[0].push_back(cplx{0.05, -0.02 * in});
  }
  for (std::size_t k = 1; k < 4; ++k)
    for (int in = 0; in < 3; ++in) {
      req.gf_nodes[k].push_back(cplx{-0.8 + 0.4 * in, 0.25});
      req.gf_weights[k].push_back(cplx{0.1 * (in + 1.0), 0.03});
    }

  om::Engine flat({});
  const auto ref = flat.run(req);
  ASSERT_EQ(ref.charge.size(), static_cast<std::size_t>(cells));
  EXPECT_EQ(ref.stats.tasks_greens, 29);
  EXPECT_EQ(ref.stats.tasks_total, 29);

  for (const int ranks : {1, 2, 4}) {
    for (const bool stealing : {true, false}) {
      om::EngineConfig cfg;
      cfg.num_ranks = ranks;
      cfg.work_stealing = stealing;
      cfg.flat_single_rank = false;  // force the rank protocol even at 1
      om::Engine engine(cfg);
      const auto res = engine.run(req);
      EXPECT_EQ(res.stats.tasks_greens, 29) << "ranks=" << ranks;
      ASSERT_EQ(res.charge.size(), ref.charge.size());
      for (std::size_t c = 0; c < ref.charge.size(); ++c)
        EXPECT_DOUBLE_EQ(res.charge[c], ref.charge[c])
            << "ranks=" << ranks << " stealing=" << stealing << " cell " << c;
      if (ranks == 4 && stealing) EXPECT_GT(res.stats.tasks_stolen, 0);
    }
  }
}

TEST(Engine, ContourChargeBitIdenticalAcrossWorldSizes) {
  // Simulator-level replica of ChargeDensityConsistentAcrossWorldSizes for
  // the contour backend, at a bias so the sweep mixes real-axis remainder
  // tasks with complex Green's-function nodes in one queue.
  om::SimulationConfig cfg = chain_config(10, 1);
  om::Simulator reference(cfg);
  const auto window = tr::band_window(reference.bands(9));
  std::vector<double> grid;
  for (double e = window.emin - 0.4;
       e < 0.5 * (window.emin + window.emax) + 0.8; e += 0.02)
    grid.push_back(e);
  const double mu = 0.5 * (window.emin + window.emax);
  omenx::charge::QuadratureOptions qopt;
  qopt.contour_points = 32;  // accuracy is not under test here
  const auto base = reference.charge_density(
      grid, mu, mu - 0.2, nullptr, omenx::charge::QuadratureAlgorithm::kContour,
      qopt);
  EXPECT_GT(reference.last_sweep_stats().tasks_greens, 0);
  EXPECT_LT(reference.last_sweep_stats().tasks_greens,
            reference.last_sweep_stats().tasks_total);

  for (const int ranks : {2, 7}) {
    om::SimulationConfig dcfg = cfg;
    dcfg.num_ranks = ranks;
    om::Simulator sim(dcfg);
    const auto charge = sim.charge_density(
        grid, mu, mu - 0.2, nullptr,
        omenx::charge::QuadratureAlgorithm::kContour, qopt);
    ASSERT_EQ(charge.size(), base.size());
    for (std::size_t c = 0; c < charge.size(); ++c)
      EXPECT_DOUBLE_EQ(charge[c], base[c]) << "ranks=" << ranks << " cell " << c;
  }
}
