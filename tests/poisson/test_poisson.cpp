#include <gtest/gtest.h>

#include <cmath>

#include "poisson/poisson1d.hpp"
#include "poisson/scf.hpp"

namespace ps = omenx::poisson;
namespace lt = omenx::lattice;

TEST(Thomas, SolvesKnownTridiagonal) {
  // -2x_i + x_{i-1} + x_{i+1} = d, 3x3 with known answer.
  std::vector<double> a{0.0, 1.0, 1.0};
  std::vector<double> b{-2.0, -2.0, -2.0};
  std::vector<double> c{1.0, 1.0, 0.0};
  // Pick x = (1, 2, 3): d = (-2+2, 1-4+3, 2-6) = (0, 0, -4).
  std::vector<double> d{0.0, 0.0, -4.0};
  const auto x = ps::thomas_solve(a, b, c, d);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Thomas, SizeMismatchThrows) {
  EXPECT_THROW(ps::thomas_solve({0.0}, {1.0, 1.0}, {0.0}, {1.0}),
               std::invalid_argument);
}

TEST(Poisson, LaplaceRespectsBoundaryConditions) {
  const lt::DeviceRegions regions{10, 8, 10};
  const auto v = ps::solve_device_potential(regions, 0.5, 0.3, {});
  ASSERT_EQ(static_cast<int>(v.size()), regions.total());
  EXPECT_NEAR(v.front(), 0.0, 1e-12);
  EXPECT_NEAR(v.back(), -0.3, 1e-12);
}

TEST(Poisson, GateLowersChannelBarrier) {
  const lt::DeviceRegions regions{12, 10, 12};
  const auto v_off = ps::solve_device_potential(regions, 0.0, 0.1, {});
  const auto v_on = ps::solve_device_potential(regions, 0.6, 0.1, {});
  // Mid-gate potential energy drops as Vgs increases (barrier lowering).
  const std::size_t mid = 12 + 5;
  EXPECT_LT(v_on[mid], v_off[mid] - 0.3);
}

TEST(Poisson, ScreeningLengthControlsSharpness) {
  const lt::DeviceRegions regions{15, 10, 15};
  ps::PoissonOptions tight;
  tight.screening_length_cells = 1.0;
  ps::PoissonOptions loose;
  loose.screening_length_cells = 8.0;
  const auto vt = ps::solve_device_potential(regions, 0.5, 0.0, {}, tight);
  const auto vl = ps::solve_device_potential(regions, 0.5, 0.0, {}, loose);
  // With tight screening the mid-gate potential pins closer to -Vgs.
  const std::size_t mid = 15 + 5;
  EXPECT_LT(std::abs(vt[mid] + 0.5), std::abs(vl[mid] + 0.5));
}

TEST(Poisson, ChargeShiftsPotential) {
  const lt::DeviceRegions regions{8, 6, 8};
  ps::PoissonOptions opt;
  opt.charge_coupling = 0.5;
  std::vector<double> rho(static_cast<std::size_t>(regions.total()), 0.0);
  rho[11] = 1.0;  // electron charge in the channel
  const auto v0 = ps::solve_device_potential(regions, 0.2, 0.0, {}, opt);
  const auto v1 = ps::solve_device_potential(regions, 0.2, 0.0, rho, opt);
  // Electron charge raises the local potential energy (repulsion).
  EXPECT_GT(v1[11], v0[11]);
}

TEST(Poisson, InvalidInputsThrow) {
  const lt::DeviceRegions regions{1, 1, 0};
  EXPECT_THROW(ps::solve_device_potential(regions, 0.0, 0.0, {}),
               std::invalid_argument);
  const lt::DeviceRegions ok{4, 4, 4};
  EXPECT_THROW(
      ps::solve_device_potential(ok, 0.0, 0.0, std::vector<double>(3, 0.0)),
      std::invalid_argument);
  ps::PoissonOptions bad;
  bad.screening_length_cells = 0.0;
  EXPECT_THROW(ps::solve_device_potential(ok, 0.0, 0.0, {}, bad),
               std::invalid_argument);
}

TEST(Scf, ConvergesWithLinearChargeModel) {
  const lt::DeviceRegions regions{8, 6, 8};
  ps::ScfOptions opt;
  opt.poisson.charge_coupling = 0.2;
  opt.tol = 1e-8;
  opt.max_iter = 200;
  // Charge responds linearly (and weakly) to the local potential.
  auto charge = [](const std::vector<double>& v) {
    std::vector<double> rho(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) rho[i] = -0.3 * v[i];
    return rho;
  };
  const auto res =
      ps::self_consistent_potential(regions, 0.4, 0.2, charge, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.residual, 1e-8);
  EXPECT_GT(res.iterations, 1);
  // Converged state is a fixed point: one more Poisson solve changes nothing.
  const auto v_again = ps::solve_device_potential(regions, 0.4, 0.2,
                                                  charge(res.potential),
                                                  opt.poisson);
  double diff = 0.0;
  for (std::size_t i = 0; i < v_again.size(); ++i)
    diff = std::max(diff, std::abs(v_again[i] - res.potential[i]));
  EXPECT_LT(diff, 1e-6);
}

TEST(Scf, ZeroChargeModelConvergesImmediately) {
  const lt::DeviceRegions regions{6, 4, 6};
  auto charge = [](const std::vector<double>& v) {
    return std::vector<double>(v.size(), 0.0);
  };
  const auto res = ps::self_consistent_potential(regions, 0.3, 0.1, charge);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 1);
}

namespace {

// A stiff linear charge response: strong coupling makes the damped linear
// iteration crawl (spectral radius near 1), the regime the paper's 40-50
// production iterations live in.
ps::ScfOptions stiff_options() {
  ps::ScfOptions opt;
  opt.poisson.charge_coupling = 0.8;
  opt.tol = 1e-9;
  opt.charge_tol = 1e-8;
  opt.max_iter = 400;
  opt.mixing = 0.3;
  return opt;
}

std::vector<double> stiff_charge(const std::vector<double>& v) {
  std::vector<double> rho(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) rho[i] = -0.72 * v[i];
  return rho;
}

}  // namespace

TEST(Scf, AndersonConvergesMuchFasterThanLinear) {
  const lt::DeviceRegions regions{10, 8, 10};
  ps::ScfOptions linear = stiff_options();
  linear.anderson_depth = 0;
  ps::ScfOptions anderson = stiff_options();
  anderson.anderson_depth = 4;

  const auto rl =
      ps::self_consistent_potential(regions, 0.5, 0.2, stiff_charge, linear);
  const auto ra =
      ps::self_consistent_potential(regions, 0.5, 0.2, stiff_charge, anderson);
  ASSERT_TRUE(rl.converged);
  ASSERT_TRUE(ra.converged);
  // Same fixed point...
  double diff = 0.0;
  for (std::size_t i = 0; i < rl.potential.size(); ++i)
    diff = std::max(diff, std::abs(rl.potential[i] - ra.potential[i]));
  EXPECT_LT(diff, 1e-7);
  // ... in at most half the iterations (in practice far fewer).
  EXPECT_LE(2 * ra.iterations, rl.iterations)
      << "anderson " << ra.iterations << " vs linear " << rl.iterations;
  // The accelerated steps actually engaged.
  int anderson_steps = 0;
  for (const auto& it : ra.history) anderson_steps += it.anderson ? 1 : 0;
  EXPECT_GT(anderson_steps, 0);
}

TEST(Scf, AndersonConvergesWhereLinearMixingDiverges) {
  // Past the stability edge of the damped iteration (|1 - m + m*J| > 1 for
  // the dominant mode) linear mixing blows up; the Anderson extrapolation
  // still finds the fixed point.
  const lt::DeviceRegions regions{10, 8, 10};
  auto charge = [](const std::vector<double>& v) {
    std::vector<double> rho(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) rho[i] = -0.9 * v[i];
    return rho;
  };
  ps::ScfOptions linear = stiff_options();
  linear.anderson_depth = 0;
  linear.max_iter = 300;
  ps::ScfOptions anderson = stiff_options();
  anderson.anderson_depth = 4;

  const auto rl =
      ps::self_consistent_potential(regions, 0.5, 0.2, charge, linear);
  const auto ra =
      ps::self_consistent_potential(regions, 0.5, 0.2, charge, anderson);
  EXPECT_FALSE(rl.converged);
  EXPECT_TRUE(ra.converged);
  EXPECT_LT(ra.residual, 1e-9);
}

TEST(Scf, DepthZeroNeverUsesAnderson) {
  const lt::DeviceRegions regions{8, 6, 8};
  ps::ScfOptions opt = stiff_options();
  opt.anderson_depth = 0;
  opt.max_iter = 500;
  const auto res =
      ps::self_consistent_potential(regions, 0.4, 0.1, stiff_charge, opt);
  ASSERT_TRUE(res.converged);
  for (const auto& it : res.history) EXPECT_FALSE(it.anderson);
}

TEST(Scf, HistoryRecordsEveryIteration) {
  const lt::DeviceRegions regions{8, 6, 8};
  ps::ScfOptions opt = stiff_options();
  const auto res =
      ps::self_consistent_potential(regions, 0.4, 0.2, stiff_charge, opt);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(static_cast<int>(res.history.size()), res.iterations);
  // Final entry mirrors the result's residuals.
  EXPECT_DOUBLE_EQ(res.history.back().potential_residual, res.residual);
  EXPECT_DOUBLE_EQ(res.history.back().charge_residual, res.charge_residual);
  // Converged means both halves of the dual criterion hold.
  EXPECT_LT(res.residual, opt.tol);
  EXPECT_LT(res.charge_residual, opt.charge_tol);
}

TEST(Scf, WarmStartFromConvergedPotentialIsImmediate) {
  const lt::DeviceRegions regions{10, 8, 10};
  ps::ScfOptions opt = stiff_options();
  const auto cold =
      ps::self_consistent_potential(regions, 0.5, 0.2, stiff_charge, opt);
  ASSERT_TRUE(cold.converged);
  const auto warm = ps::self_consistent_potential(regions, 0.5, 0.2,
                                                  stiff_charge, opt,
                                                  &cold.potential);
  ASSERT_TRUE(warm.converged);
  // Restarting at the fixed point needs only the dual-criterion check
  // itself (iteration 1 measures the charge step from the zero seed).
  EXPECT_LE(warm.iterations, 2);
  EXPECT_LT(warm.iterations, cold.iterations);
  // Seeding the converged charge too removes even that extra evaluation.
  const auto warmest = ps::self_consistent_potential(
      regions, 0.5, 0.2, stiff_charge, opt, &cold.potential, &cold.charge);
  ASSERT_TRUE(warmest.converged);
  EXPECT_EQ(warmest.iterations, 1);
}

TEST(Scf, NonConvergedIterationsMatchHistorySize) {
  const lt::DeviceRegions regions{6, 4, 6};
  ps::ScfOptions opt = stiff_options();
  opt.anderson_depth = 0;
  opt.max_iter = 5;  // far too few for the stiff model
  const auto res =
      ps::self_consistent_potential(regions, 0.4, 0.2, stiff_charge, opt);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 5);
  EXPECT_EQ(res.history.size(), 5u);
}

TEST(Scf, SizeMismatchesThrow) {
  const lt::DeviceRegions regions{4, 4, 4};
  auto ok = [](const std::vector<double>& v) {
    return std::vector<double>(v.size(), 0.0);
  };
  const std::vector<double> wrong(7, 0.0);  // device has 12 cells
  EXPECT_THROW(
      ps::self_consistent_potential(regions, 0.1, 0.0, ok, {}, &wrong),
      std::invalid_argument);
  auto bad = [](const std::vector<double>& v) {
    return std::vector<double>(v.size() + 3, 0.0);
  };
  EXPECT_THROW(ps::self_consistent_potential(regions, 0.1, 0.0, bad),
               std::invalid_argument);
}

TEST(Scf, DualCriterionWaitsForChargeToSettle) {
  const lt::DeviceRegions regions{6, 4, 6};
  // Stateful model: charge ignores the potential entirely (coupling 0, so
  // the potential residual is 0 from iteration 1) but keeps drifting for
  // two evaluations.  Only the charge half of the criterion can hold the
  // loop open.
  auto drifting = [calls = 0](const std::vector<double>& v) mutable {
    ++calls;
    const double level = calls == 1 ? 1.0 : 0.5;
    return std::vector<double>(v.size(), level);
  };
  ps::ScfOptions opt;
  opt.poisson.charge_coupling = 0.0;
  opt.tol = 1e-10;
  opt.charge_tol = 1e-6;
  const auto res =
      ps::self_consistent_potential(regions, 0.2, 0.1, drifting, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 3);  // 1.0 -> 0.5 -> 0.5 (settled)
  ASSERT_EQ(res.history.size(), 3u);
  EXPECT_NEAR(res.history[0].charge_residual, 1.0, 1e-12);
  EXPECT_NEAR(res.history[1].charge_residual, 0.5, 1e-12);
  EXPECT_NEAR(res.history[2].charge_residual, 0.0, 1e-12);

  // Disabling the charge criterion recovers the potential-only test: the
  // same model then converges on the first evaluation.
  auto drifting2 = [calls = 0](const std::vector<double>& v) mutable {
    ++calls;
    return std::vector<double>(v.size(), calls == 1 ? 1.0 : 0.5);
  };
  ps::ScfOptions loose = opt;
  loose.charge_tol = 0.0;
  const auto res2 =
      ps::self_consistent_potential(regions, 0.2, 0.1, drifting2, loose);
  EXPECT_TRUE(res2.converged);
  EXPECT_EQ(res2.iterations, 1);
}

// ------------------------------------- contact-shift spelling unification --

TEST(ScfOptions, ScalarShiftForwardsOntoEveryTerminal) {
  ps::ScfOptions scf;
  scf.contact_shift = -0.07;
  EXPECT_EQ(scf.resolved_contact_shifts(3),
            (std::vector<double>{-0.07, -0.07, -0.07}));
  // Classic no-contact layouts still read one uniform entry.
  EXPECT_EQ(scf.resolved_contact_shifts(0), std::vector<double>{-0.07});
}

TEST(ScfOptions, VectorShiftsAreCanonical) {
  ps::ScfOptions scf;
  scf.contact_shifts = {0.0, -0.1};
  EXPECT_EQ(scf.resolved_contact_shifts(2),
            (std::vector<double>{0.0, -0.1}));
  // One entry per configured contact, enforced.
  EXPECT_THROW(scf.resolved_contact_shifts(3), std::invalid_argument);
}

TEST(ScfOptions, BothShiftSpellingsAtOnceIsAmbiguous) {
  ps::ScfOptions scf;
  scf.contact_shift = -0.05;
  scf.contact_shifts = {-0.05, -0.05};
  EXPECT_THROW(scf.resolved_contact_shifts(2), std::invalid_argument);
}
