#include <gtest/gtest.h>

#include <cmath>

#include "poisson/poisson1d.hpp"
#include "poisson/scf.hpp"

namespace ps = omenx::poisson;
namespace lt = omenx::lattice;

TEST(Thomas, SolvesKnownTridiagonal) {
  // -2x_i + x_{i-1} + x_{i+1} = d, 3x3 with known answer.
  std::vector<double> a{0.0, 1.0, 1.0};
  std::vector<double> b{-2.0, -2.0, -2.0};
  std::vector<double> c{1.0, 1.0, 0.0};
  // Pick x = (1, 2, 3): d = (-2+2, 1-4+3, 2-6) = (0, 0, -4).
  std::vector<double> d{0.0, 0.0, -4.0};
  const auto x = ps::thomas_solve(a, b, c, d);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Thomas, SizeMismatchThrows) {
  EXPECT_THROW(ps::thomas_solve({0.0}, {1.0, 1.0}, {0.0}, {1.0}),
               std::invalid_argument);
}

TEST(Poisson, LaplaceRespectsBoundaryConditions) {
  const lt::DeviceRegions regions{10, 8, 10};
  const auto v = ps::solve_device_potential(regions, 0.5, 0.3, {});
  ASSERT_EQ(static_cast<int>(v.size()), regions.total());
  EXPECT_NEAR(v.front(), 0.0, 1e-12);
  EXPECT_NEAR(v.back(), -0.3, 1e-12);
}

TEST(Poisson, GateLowersChannelBarrier) {
  const lt::DeviceRegions regions{12, 10, 12};
  const auto v_off = ps::solve_device_potential(regions, 0.0, 0.1, {});
  const auto v_on = ps::solve_device_potential(regions, 0.6, 0.1, {});
  // Mid-gate potential energy drops as Vgs increases (barrier lowering).
  const std::size_t mid = 12 + 5;
  EXPECT_LT(v_on[mid], v_off[mid] - 0.3);
}

TEST(Poisson, ScreeningLengthControlsSharpness) {
  const lt::DeviceRegions regions{15, 10, 15};
  ps::PoissonOptions tight;
  tight.screening_length_cells = 1.0;
  ps::PoissonOptions loose;
  loose.screening_length_cells = 8.0;
  const auto vt = ps::solve_device_potential(regions, 0.5, 0.0, {}, tight);
  const auto vl = ps::solve_device_potential(regions, 0.5, 0.0, {}, loose);
  // With tight screening the mid-gate potential pins closer to -Vgs.
  const std::size_t mid = 15 + 5;
  EXPECT_LT(std::abs(vt[mid] + 0.5), std::abs(vl[mid] + 0.5));
}

TEST(Poisson, ChargeShiftsPotential) {
  const lt::DeviceRegions regions{8, 6, 8};
  ps::PoissonOptions opt;
  opt.charge_coupling = 0.5;
  std::vector<double> rho(static_cast<std::size_t>(regions.total()), 0.0);
  rho[11] = 1.0;  // electron charge in the channel
  const auto v0 = ps::solve_device_potential(regions, 0.2, 0.0, {}, opt);
  const auto v1 = ps::solve_device_potential(regions, 0.2, 0.0, rho, opt);
  // Electron charge raises the local potential energy (repulsion).
  EXPECT_GT(v1[11], v0[11]);
}

TEST(Poisson, InvalidInputsThrow) {
  const lt::DeviceRegions regions{1, 1, 0};
  EXPECT_THROW(ps::solve_device_potential(regions, 0.0, 0.0, {}),
               std::invalid_argument);
  const lt::DeviceRegions ok{4, 4, 4};
  EXPECT_THROW(
      ps::solve_device_potential(ok, 0.0, 0.0, std::vector<double>(3, 0.0)),
      std::invalid_argument);
  ps::PoissonOptions bad;
  bad.screening_length_cells = 0.0;
  EXPECT_THROW(ps::solve_device_potential(ok, 0.0, 0.0, {}, bad),
               std::invalid_argument);
}

TEST(Scf, ConvergesWithLinearChargeModel) {
  const lt::DeviceRegions regions{8, 6, 8};
  ps::ScfOptions opt;
  opt.poisson.charge_coupling = 0.2;
  opt.tol = 1e-8;
  opt.max_iter = 200;
  // Charge responds linearly (and weakly) to the local potential.
  auto charge = [](const std::vector<double>& v) {
    std::vector<double> rho(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) rho[i] = -0.3 * v[i];
    return rho;
  };
  const auto res =
      ps::self_consistent_potential(regions, 0.4, 0.2, charge, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.residual, 1e-8);
  EXPECT_GT(res.iterations, 1);
  // Converged state is a fixed point: one more Poisson solve changes nothing.
  const auto v_again = ps::solve_device_potential(regions, 0.4, 0.2,
                                                  charge(res.potential),
                                                  opt.poisson);
  double diff = 0.0;
  for (std::size_t i = 0; i < v_again.size(); ++i)
    diff = std::max(diff, std::abs(v_again[i] - res.potential[i]));
  EXPECT_LT(diff, 1e-6);
}

TEST(Scf, ZeroChargeModelConvergesImmediately) {
  const lt::DeviceRegions regions{6, 4, 6};
  auto charge = [](const std::vector<double>& v) {
    return std::vector<double>(v.size(), 0.0);
  };
  const auto res = ps::self_consistent_potential(regions, 0.3, 0.1, charge);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 1);
}
