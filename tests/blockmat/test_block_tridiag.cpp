#include "blockmat/block_tridiag.hpp"

#include <gtest/gtest.h>

#include "numeric/blas.hpp"

namespace bm = omenx::blockmat;
namespace nm = omenx::numeric;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {
bm::BlockTridiag random_tridiag(idx nb, idx s, unsigned seed) {
  bm::BlockTridiag t(nb, s);
  for (idx i = 0; i < nb; ++i) {
    t.diag(i) = nm::random_cmatrix(s, s, seed + static_cast<unsigned>(i));
    for (idx d = 0; d < s; ++d) t.diag(i)(d, d) += cplx{4.0};
    if (i + 1 < nb) {
      t.upper(i) = nm::random_cmatrix(s, s, seed + 100 + static_cast<unsigned>(i));
      t.lower(i) = nm::random_cmatrix(s, s, seed + 200 + static_cast<unsigned>(i));
    }
  }
  return t;
}
}  // namespace

TEST(BlockTridiag, DimensionsAndZeroInit) {
  bm::BlockTridiag t(5, 3);
  EXPECT_EQ(t.num_blocks(), 5);
  EXPECT_EQ(t.block_size(), 3);
  EXPECT_EQ(t.dim(), 15);
  EXPECT_EQ(t.nnz(0.0), 0);
}

TEST(BlockTridiag, InvalidConstructionThrows) {
  EXPECT_THROW(bm::BlockTridiag(0, 3), std::invalid_argument);
  EXPECT_THROW(bm::BlockTridiag(3, 0), std::invalid_argument);
}

TEST(BlockTridiag, ToDensePlacesBlocks) {
  bm::BlockTridiag t(3, 2);
  t.diag(1)(0, 0) = cplx{5.0};
  t.upper(0)(1, 1) = cplx{7.0};
  t.lower(1)(0, 1) = cplx{9.0};
  CMatrix d = t.to_dense();
  EXPECT_EQ(d(2, 2), cplx{5.0});
  EXPECT_EQ(d(1, 3), cplx{7.0});
  EXPECT_EQ(d(4, 3), cplx{9.0});
  EXPECT_EQ(d(0, 5), cplx{0.0});  // outside the band
}

TEST(BlockTridiag, MultiplyMatchesDense) {
  const auto t = random_tridiag(4, 3, 1);
  const CMatrix x = nm::random_cmatrix(12, 2, 50);
  const CMatrix y1 = t.multiply(x);
  const CMatrix y2 = nm::matmul(t.to_dense(), x);
  EXPECT_LT(nm::max_abs_diff(y1, y2), 1e-12);
}

TEST(BlockTridiag, NnzThreshold) {
  bm::BlockTridiag t(2, 2);
  t.diag(0)(0, 0) = cplx{1.0};
  t.diag(0)(1, 1) = cplx{1e-12};
  EXPECT_EQ(t.nnz(1e-10), 1);
  EXPECT_EQ(t.nnz(0.0), 2);
}

TEST(BlockTridiag, HermitianDetection) {
  bm::BlockTridiag t(3, 2);
  for (idx i = 0; i < 3; ++i) {
    CMatrix a = nm::random_cmatrix(2, 2, 60 + static_cast<unsigned>(i));
    t.diag(i) = a + nm::dagger(a);
  }
  for (idx i = 0; i < 2; ++i) {
    t.upper(i) = nm::random_cmatrix(2, 2, 70 + static_cast<unsigned>(i));
    t.lower(i) = nm::dagger(t.upper(i));
  }
  EXPECT_TRUE(t.is_hermitian());
  t.lower(0)(0, 0) += cplx{0.0, 0.5};
  EXPECT_FALSE(t.is_hermitian());
}

TEST(BlockTridiag, EsMinusH) {
  const auto h = random_tridiag(3, 2, 80);
  const auto s = random_tridiag(3, 2, 90);
  const cplx e{1.5, 0.1};
  const auto t = bm::BlockTridiag::es_minus_h(e, s, h);
  const CMatrix expected = s.to_dense() * e - h.to_dense();
  EXPECT_LT(nm::max_abs_diff(t.to_dense(), expected), 1e-12);
}

TEST(BlockTridiag, AxpyStructureMismatchThrows) {
  bm::BlockTridiag a(3, 2), b(4, 2);
  EXPECT_THROW(a.axpy(cplx{1.0}, b, cplx{1.0}), std::invalid_argument);
}

TEST(BlockTridiag, CountNnzDense) {
  CMatrix m(2, 3);
  m(0, 0) = cplx{0.5};
  m(1, 2) = cplx{0.0, 2.0};
  EXPECT_EQ(bm::count_nnz(m, 0.1), 2);
  EXPECT_EQ(bm::count_nnz(m, 1.0), 1);
}
