#include <gtest/gtest.h>

#include "blockmat/block_tridiag.hpp"
#include "numeric/blas.hpp"
#include "numeric/flops.hpp"
#include "numeric/lu.hpp"
#include "perf/flops.hpp"
#include "perf/machine.hpp"
#include "perf/power.hpp"
#include "perf/scaling.hpp"
#include "solvers/rgf.hpp"

namespace bm = omenx::blockmat;
namespace nm = omenx::numeric;
namespace pf = omenx::perf;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

TEST(Machine, TableISpecs) {
  const auto titan = pf::MachineSpec::titan();
  EXPECT_EQ(titan.hybrid_nodes, 18688);
  EXPECT_DOUBLE_EQ(titan.cpu_gflops, 134.4);
  EXPECT_DOUBLE_EQ(titan.gpu_gflops, 1311.0);
  const auto daint = pf::MachineSpec::piz_daint();
  EXPECT_EQ(daint.hybrid_nodes, 5272);
  EXPECT_DOUBLE_EQ(daint.cpu_gflops, 166.4);
  // Node peak matches Table I: 134.4 + 1311 GFlop/s etc.
  EXPECT_NEAR(titan.peak_pflops(1), (134.4 + 1311.0) * 1e-6, 1e-12);
}

TEST(Flops, AnalyticCountsMatchInstrumentedKernels) {
  // GEMM.
  nm::FlopCounter::reset();
  const CMatrix a = nm::random_cmatrix(13, 17, 1);
  const CMatrix b = nm::random_cmatrix(17, 11, 2);
  nm::FlopCounter::reset();
  nm::matmul(a, b);
  EXPECT_EQ(nm::FlopCounter::total(), pf::gemm_flops(13, 11, 17));
  // LU factor + solve.
  const CMatrix m = [] {
    CMatrix x = nm::random_cmatrix(20, 20, 3);
    for (idx i = 0; i < 20; ++i) x(i, i) += cplx{8.0};
    return x;
  }();
  nm::FlopCounter::reset();
  nm::LUFactor lu(m);
  EXPECT_EQ(nm::FlopCounter::total(), pf::lu_flops(20));
  const CMatrix rhs = nm::random_cmatrix(20, 4, 4);
  nm::FlopCounter::reset();
  lu.solve(rhs);
  EXPECT_EQ(nm::FlopCounter::total(), pf::lu_solve_flops(20, 4));
}

TEST(Flops, SplitSolvePreprocessCountTracksMeasurement) {
  // The analytic Algorithm-1 count should agree with the instrumented RGF
  // sweeps to within the small-size boundary effects (first/last blocks skip
  // one GEMM each).
  bm::BlockTridiag t(12, 8);
  for (idx i = 0; i < 12; ++i) {
    t.diag(i) = nm::random_cmatrix(8, 8, 10 + static_cast<unsigned>(i));
    for (idx d = 0; d < 8; ++d) t.diag(i)(d, d) += cplx{9.0};
    if (i + 1 < 12) {
      t.upper(i) = nm::random_cmatrix(8, 8, 30 + static_cast<unsigned>(i));
      t.lower(i) = nm::random_cmatrix(8, 8, 50 + static_cast<unsigned>(i));
    }
  }
  nm::FlopCounter::reset();
  omenx::solvers::rgf_block_columns(t);
  const double measured = static_cast<double>(nm::FlopCounter::total());
  const double analytic =
      static_cast<double>(pf::splitsolve_preprocess_flops(12, 8));
  EXPECT_NEAR(measured / analytic, 1.0, 0.25);
}

TEST(Flops, PaperScaleEnergyPointIsHundredsOfTeraflops) {
  // UTBFET: 23040 atoms, NSS = 276480, folded supercells of NBW=2 cells.
  const idx s = 276480 / 72;  // 72 supercells of ~3840 orbitals
  const idx nb = 72;
  const double tflops =
      static_cast<double>(pf::splitsolve_preprocess_flops(nb, s)) * 1e-12;
  // Paper: 230 TFLOPs on the GPUs per energy point; same order here.
  EXPECT_GT(tflops, 50.0);
  EXPECT_LT(tflops, 1000.0);
}

TEST(ScalingFig7, WeakScalingMatchesPaperNarrative) {
  pf::SplitSolveScalingModel model;
  // "from 30 sec on 2 GPUs (1 partition) up to 70 sec on 32 GPUs
  //  (16 partitions, 4 recursive steps)".
  EXPECT_DOUBLE_EQ(model.weak_time(2), 30.0);
  EXPECT_DOUBLE_EQ(model.weak_time(32), 70.0);
  EXPECT_NEAR(model.weak_efficiency(32), 30.0 / 70.0, 1e-12);
  // Efficiency decreases monotonically with GPU count.
  double prev = 1.1;
  for (int g = 2; g <= 32; g *= 2) {
    const double eff = model.weak_efficiency(g);
    EXPECT_LT(eff, prev);
    prev = eff;
  }
}

TEST(ScalingFig7, StrongScalingIsPoorForSmallWorkload) {
  pf::SplitSolveScalingModel model;
  // Fixed-size problem: spikes eat the gains beyond a few GPUs (Fig. 7b).
  const double eff8 = model.strong_efficiency(8);
  const double eff16 = model.strong_efficiency(16);
  EXPECT_LT(eff16, eff8);
  EXPECT_LT(eff16, 0.5);
}

TEST(ScalingFig8, SpeedupOrderingAndMagnitudes) {
  pf::SolverComparisonModel model;
  // UTBFET 23040 atoms on 4 nodes: NSS=276480, 72 supercells of 3840.
  const idx nb = 72, s = 3840, degree = 4;
  const auto si = model.shift_invert_mumps(nb, s, degree, 4);
  const auto fm = model.feast_mumps(nb, s, degree, 4);
  const auto fs = model.feast_splitsolve(nb, s, degree, 4);
  // Ordering: SI+MUMPS slowest, FEAST+SplitSolve fastest.
  EXPECT_GT(si.total(), fm.total());
  EXPECT_GT(fm.total(), fs.total());
  // Paper: total speedup > 50x, solver-only speedup 6-16x.
  EXPECT_GT(si.total() / fs.total(), 50.0);
  const double solver_speedup = fm.solve_s / fs.solve_s;
  EXPECT_GT(solver_speedup, 4.0);
  EXPECT_LT(solver_speedup, 40.0);
}

TEST(ScalingFig11, StrongScalingReproducesTableIII) {
  pf::OmenRunModel model;
  const std::vector<int> nodes{756, 1512, 3024, 6048, 12096, 18564};
  const auto pts = model.strong_scaling(nodes);
  ASSERT_EQ(pts.size(), 6u);
  // Table III row anchors (paper: 26975 s, ..., 1130 s; 97.3% efficiency;
  // 12.8 PFlop/s).
  EXPECT_NEAR(pts.front().time_s, 26975.0, 0.15 * 26975.0);
  EXPECT_NEAR(pts.back().time_s, 1130.0, 0.15 * 1130.0);
  EXPECT_GT(pts.back().efficiency, 0.90);
  EXPECT_NEAR(pts.back().pflops, 12.8, 1.5);
  // Efficiency decreases but stays high.
  for (const auto& p : pts) EXPECT_GT(p.efficiency, 0.9);
}

TEST(ScalingFig11, TunedRunReaches15PFlops) {
  pf::OmenRunModel model;
  model.tflops_per_energy = 228.0;      // zhesv_nopiv_gpu variant
  model.time_per_energy_s = 85.0 * 912.5 / 1130.0;
  const auto pts = model.strong_scaling({18564});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].time_s, 912.5, 0.12 * 912.5);
  EXPECT_NEAR(pts[0].pflops, 15.01, 1.5);
}

TEST(ScalingFig11, WeakScalingReproducesTableII) {
  pf::OmenRunModel model;
  const std::vector<int> nodes{588, 1176, 2352, 4704, 9408, 18564};
  const auto pts = model.weak_scaling(nodes);
  ASSERT_EQ(pts.size(), 6u);
  for (const auto& p : pts) {
    // Table II: 12.9-14.1 E per group, 87.5-92.7 s per energy point.
    EXPECT_GT(p.avg_e_per_group, 12.5);
    EXPECT_LT(p.avg_e_per_group, 14.5);
    EXPECT_GT(p.time_per_energy, 80.0);
    EXPECT_LT(p.time_per_energy, 100.0);
    EXPECT_GT(p.time_s, 1000.0);
    EXPECT_LT(p.time_s, 1400.0);
  }
}

TEST(ScalingFig11, EnergiesPerKMatchSection5D) {
  pf::OmenRunModel model;
  const auto e = model.energies_per_k();
  ASSERT_EQ(static_cast<int>(e.size()), 21);
  idx total = 0;
  for (const auto v : e) {
    EXPECT_GE(v, 2600);
    EXPECT_LE(v, 3100);
    total += v;
  }
  EXPECT_EQ(total, 59908);
}

TEST(PowerFig12, CalibratedAverages) {
  const auto profile = pf::model_power_profile();
  // Paper: 7.6 MW average, 8.8 MW peak, 146 W per GPU,
  // 1975 / 5396 MFLOPS/W.
  EXPECT_NEAR(profile.avg_machine_mw, 7.6, 0.8);
  EXPECT_NEAR(profile.avg_gpu_watts, 146.0, 20.0);
  EXPECT_GT(profile.peak_machine_mw, profile.avg_machine_mw);
  EXPECT_LT(profile.peak_machine_mw, 9.6);
  EXPECT_NEAR(profile.machine_mflops_per_watt, 1975.0, 300.0);
  EXPECT_NEAR(profile.gpu_mflops_per_watt, 5396.0, 900.0);
}

TEST(PowerFig12, ProfileIsPeriodicPerEnergyPoint) {
  pf::PowerModelConfig cfg;
  cfg.run_time_s = 910.0;  // 13 points x 70 s: aligned with the sampling
  cfg.sample_interval_s = 0.5;
  const auto profile = pf::model_power_profile(cfg);
  ASSERT_GT(profile.samples.size(), 100u);
  // The phase pattern repeats every run_time / points seconds.
  const double period = cfg.run_time_s / cfg.energy_points_per_group;
  const auto& s = profile.samples;
  const std::size_t stride = static_cast<std::size_t>(period / 0.5);
  for (std::size_t i = 0; i + stride < std::min<std::size_t>(s.size(), 3 * stride);
       ++i)
    EXPECT_NEAR(s[i].gpu_watts, s[i + stride].gpu_watts, 1e-9);
}

TEST(PowerFig12, PhaseSlicesSumToOne) {
  const auto slices = pf::splitsolve_phase_slices();
  double total = 0.0;
  for (const auto& sl : slices) {
    EXPECT_GT(sl.fraction, 0.0);
    EXPECT_GE(sl.gpu_utilization, 0.0);
    EXPECT_LE(sl.gpu_utilization, 1.0);
    total += sl.fraction;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

// The blocked LU's trailing updates run through the GEMM kernel but must
// not double count: the factorization reports exactly the analytic
// (8/3) n^3 and the blocked solve exactly 8 n^2 nrhs, for sizes that cross
// several panels.
TEST(Flops, BlockedLUCountsStayAnalytic) {
  const idx n = 200;
  CMatrix a = nm::random_cmatrix(n, n, 7);
  for (idx i = 0; i < n; ++i) a(i, i) += cplx{double(n)};
  nm::FlopCounter::reset();
  const nm::LUFactor lu(a);
  EXPECT_EQ(nm::FlopCounter::total(), pf::lu_flops(n));
  const CMatrix rhs = nm::random_cmatrix(n, 9, 8);
  nm::FlopCounter::reset();
  lu.solve(rhs);
  EXPECT_EQ(nm::FlopCounter::total(), pf::lu_solve_flops(n, 9));
}
