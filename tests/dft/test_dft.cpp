#include <gtest/gtest.h>

#include <cmath>

#include "dft/basis.hpp"
#include "dft/gaussian.hpp"
#include "dft/hamiltonian.hpp"
#include "lattice/structure.hpp"
#include "numeric/blas.hpp"
#include "numeric/cholesky.hpp"

namespace df = omenx::dft;
namespace lt = omenx::lattice;
namespace nm = omenx::numeric;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {
lt::Structure tiny_wire(idx cells) { return lt::make_nanowire(0.8, cells); }
}  // namespace

TEST(Gaussian, SelfOverlapIsOne) {
  df::Orbital s{0, 20.0, -10.0, df::AngularMomentum::kS, 0};
  df::Orbital p{0, 20.0, -5.0, df::AngularMomentum::kP, 1};
  lt::Vec3 r{0.3, -0.2, 0.7};
  EXPECT_NEAR(df::gaussian_overlap(s, r, s, r), 1.0, 1e-13);
  EXPECT_NEAR(df::gaussian_overlap(p, r, p, r), 1.0, 1e-13);
}

TEST(Gaussian, OverlapSymmetry) {
  df::Orbital a{0, 12.0, -10.0, df::AngularMomentum::kS, 0};
  df::Orbital b{1, 30.0, -6.0, df::AngularMomentum::kP, 2};
  lt::Vec3 ra{0.0, 0.0, 0.0}, rb{0.2, 0.1, -0.3};
  EXPECT_NEAR(df::gaussian_overlap(a, ra, b, rb),
              df::gaussian_overlap(b, rb, a, ra), 1e-13);
}

TEST(Gaussian, OverlapDecaysWithDistance) {
  df::Orbital a{0, 12.0, -10.0, df::AngularMomentum::kS, 0};
  lt::Vec3 r0{0.0, 0.0, 0.0};
  double prev = 1.0;
  for (double d = 0.1; d < 1.2; d += 0.1) {
    const double ov = df::gaussian_overlap(a, r0, a, {d, 0.0, 0.0});
    EXPECT_LT(ov, prev);
    EXPECT_GT(ov, 0.0);
    prev = ov;
  }
}

TEST(Gaussian, OrthogonalPComponentsVanish) {
  // p_x at A vs p_y at B displaced along z only: overlap must vanish.
  df::Orbital px{0, 15.0, -5.0, df::AngularMomentum::kP, 0};
  df::Orbital py{1, 15.0, -5.0, df::AngularMomentum::kP, 1};
  EXPECT_NEAR(df::gaussian_overlap(px, {0, 0, 0}, py, {0, 0, 0.4}), 0.0, 1e-14);
}

TEST(Gaussian, PSOverlapAntisymmetricInDisplacement) {
  df::Orbital p{0, 15.0, -5.0, df::AngularMomentum::kP, 0};
  df::Orbital s{1, 20.0, -10.0, df::AngularMomentum::kS, 0};
  const double plus = df::gaussian_overlap(p, {0, 0, 0}, s, {0.3, 0, 0});
  const double minus = df::gaussian_overlap(p, {0, 0, 0}, s, {-0.3, 0, 0});
  EXPECT_NEAR(plus, -minus, 1e-13);
  EXPECT_NE(plus, 0.0);
}

TEST(Basis, SiIs3SPWithTwelveOrbitals) {
  df::BasisLibrary lib(df::Functional::kLDA);
  EXPECT_EQ(lib.for_species(lt::Species::kSi).num_orbitals(), 12);
  EXPECT_EQ(lib.for_species(lt::Species::kLi).num_orbitals(), 1);
}

TEST(Basis, Hse06LiftsEmptyShells) {
  df::BasisLibrary lda(df::Functional::kLDA);
  df::BasisLibrary hse(df::Functional::kHSE06);
  const auto& sl = lda.for_species(lt::Species::kSi).shells;
  const auto& sh = hse.for_species(lt::Species::kSi).shells;
  ASSERT_EQ(sl.size(), sh.size());
  bool some_lifted = false;
  for (std::size_t i = 0; i < sl.size(); ++i) {
    EXPECT_GE(sh[i].energy, sl[i].energy);
    some_lifted |= sh[i].energy > sl[i].energy;
  }
  EXPECT_TRUE(some_lifted);
}

TEST(Basis, EnumerateOrbitalsOrderAndCount) {
  df::BasisLibrary lib;
  const auto wire = tiny_wire(2);
  const auto orbs = df::enumerate_orbitals(wire.cell_atoms, lib);
  EXPECT_EQ(static_cast<idx>(orbs.size()), wire.orbitals_per_cell());
  // Orbitals of one atom are contiguous.
  for (std::size_t i = 1; i < orbs.size(); ++i)
    EXPECT_LE(orbs[i - 1].atom, orbs[i].atom);
}

TEST(Hamiltonian, BlocksAreHermitianOnsite) {
  df::BasisLibrary lib;
  const auto wire = tiny_wire(2);
  const auto lead = df::build_lead_blocks(wire, lib);
  EXPECT_TRUE(nm::is_hermitian(lead.h[0], 1e-9));
  EXPECT_TRUE(nm::is_hermitian(lead.s[0], 1e-9));
  EXPECT_GE(lead.nbw(), 1);
}

TEST(Hamiltonian, OverlapDiagonalIsUnityPlusRidge) {
  df::BasisLibrary lib;
  df::BuildOptions opt;
  const auto lead = df::build_lead_blocks(tiny_wire(2), lib, opt);
  for (idx i = 0; i < lead.block_dim(); ++i)
    EXPECT_NEAR(lead.s[0](i, i).real(), 1.0 + opt.overlap_ridge, 1e-10);
}

TEST(Hamiltonian, FoldedOverlapIsPositiveDefinite) {
  df::BasisLibrary lib;
  const auto lead = df::build_lead_blocks(tiny_wire(2), lib);
  const auto folded = df::fold_lead(lead);
  EXPECT_TRUE(nm::is_hpd(folded.s00));
}

TEST(Hamiltonian, DftHasFarMoreNonzerosThanTightBinding) {
  // The Fig. 3 statement: DFT basis blocks carry ~100x the non-zeros of a
  // tight-binding description of the same cell.
  df::BasisLibrary lib;
  const auto wire = lt::make_nanowire(1.4, 2);
  const auto dftb = df::build_lead_blocks(wire, lib);
  const auto tb = df::build_tb_lead_blocks(wire);
  idx nnz_dft = 0, nnz_tb = 0;
  for (const auto& b : dftb.h) nnz_dft += omenx::blockmat::count_nnz(b, 1e-8);
  for (const auto& b : tb.h) nnz_tb += omenx::blockmat::count_nnz(b, 1e-8);
  EXPECT_GT(nnz_dft, 20 * nnz_tb);
}

TEST(Hamiltonian, TbBlocksAreHermitianStructured) {
  const auto wire = tiny_wire(2);
  const auto tb = df::build_tb_lead_blocks(wire);
  EXPECT_TRUE(nm::is_hermitian(tb.h[0], 1e-9));
  EXPECT_EQ(tb.nbw(), 1);
  // Orthogonal basis: S0 = I, S1 = 0.
  EXPECT_LT(nm::max_abs_diff(tb.s[0], CMatrix::identity(tb.block_dim())),
            1e-12);
  EXPECT_LT(nm::max_abs(tb.s[1]), 1e-12);
}

TEST(Hamiltonian, DeviceAssemblyHermitianWithoutPotential) {
  df::BasisLibrary lib;
  const auto lead = df::build_lead_blocks(tiny_wire(2), lib);
  const idx fold = std::max<idx>(1, lead.nbw());
  const idx cells = 4 * fold;
  const std::vector<double> v(static_cast<std::size_t>(cells), 0.0);
  const auto dm = df::assemble_device(lead, cells, v);
  EXPECT_TRUE(dm.h.is_hermitian(1e-9));
  EXPECT_TRUE(dm.s.is_hermitian(1e-9));
  EXPECT_EQ(dm.h.dim(), lead.block_dim() * cells);
}

TEST(Hamiltonian, UniformPotentialShiftsSpectrumViaS) {
  // With V constant, H(V) = H(0) + V*S exactly.
  df::BasisLibrary lib;
  const auto lead = df::build_lead_blocks(tiny_wire(2), lib);
  const idx fold = std::max<idx>(1, lead.nbw());
  const idx cells = 4 * fold;
  const std::vector<double> v0(static_cast<std::size_t>(cells), 0.0);
  const std::vector<double> v1(static_cast<std::size_t>(cells), 0.35);
  const auto d0 = df::assemble_device(lead, cells, v0);
  const auto d1 = df::assemble_device(lead, cells, v1);
  const CMatrix expected = d0.h.to_dense() + d0.s.to_dense() * cplx{0.35};
  EXPECT_LT(nm::max_abs_diff(d1.h.to_dense(), expected), 1e-10);
}

TEST(Hamiltonian, DeviceCellCountMustDivideByFold) {
  df::BasisLibrary lib;
  const auto lead = df::build_lead_blocks(tiny_wire(2), lib);
  if (lead.nbw() >= 2) {
    const std::vector<double> v(5, 0.0);
    EXPECT_THROW(df::assemble_device(lead, 5, v), std::invalid_argument);
  }
}

TEST(Hamiltonian, KTransverseChangesUtbBlocksButKeepsHermiticity) {
  df::BasisLibrary lib;
  const auto utb = lt::make_utb(1.0, 2);
  df::BuildOptions o0;
  df::BuildOptions o1;
  o1.k_transverse = 0.8;
  const auto b0 = df::build_lead_blocks(utb, lib, o0);
  const auto b1 = df::build_lead_blocks(utb, lib, o1);
  EXPECT_GT(nm::max_abs_diff(b0.h[0], b1.h[0]), 1e-6);
  EXPECT_TRUE(nm::is_hermitian(b1.h[0], 1e-9));
  EXPECT_TRUE(nm::is_hermitian(b1.s[0], 1e-9));
}

TEST(Hamiltonian, OrbitalToAtomMap) {
  df::BasisLibrary lib;
  const auto wire = tiny_wire(2);
  const auto map = df::orbital_to_atom(wire, lib);
  EXPECT_EQ(static_cast<idx>(map.size()), wire.orbitals_per_cell());
  EXPECT_EQ(map.front(), 0);
  EXPECT_EQ(map.back(), wire.atoms_per_cell() - 1);
}

TEST(Hamiltonian, CutoffControlsBandwidth) {
  df::BasisLibrary lib;
  df::BuildOptions narrow;
  narrow.cutoff_nm = 0.5;
  df::BuildOptions wide;
  wide.cutoff_nm = 1.4;
  const auto wire = tiny_wire(2);
  const auto bn = df::build_lead_blocks(wire, lib, narrow);
  const auto bw = df::build_lead_blocks(wire, lib, wide);
  EXPECT_LT(bn.nbw(), bw.nbw());
}
