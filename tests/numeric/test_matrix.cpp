#include "numeric/matrix.hpp"

#include <gtest/gtest.h>

#include "numeric/blas.hpp"

namespace nm = omenx::numeric;
using nm::CMatrix;
using nm::cplx;
using nm::idx;
using nm::RMatrix;

TEST(Matrix, DefaultIsEmpty) {
  CMatrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructAndIndex) {
  CMatrix m(3, 4, cplx{1.5, -0.5});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m(2, 3), cplx(1.5, -0.5));
  m(1, 2) = cplx{2.0, 3.0};
  EXPECT_EQ(m(1, 2), cplx(2.0, 3.0));
}

TEST(Matrix, InitializerList) {
  RMatrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((RMatrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  CMatrix i = CMatrix::identity(4);
  for (idx r = 0; r < 4; ++r)
    for (idx c = 0; c < 4; ++c)
      EXPECT_EQ(i(r, c), r == c ? cplx{1.0} : cplx{0.0});
}

TEST(Matrix, BlockExtractAndSet) {
  CMatrix m(4, 4);
  for (idx r = 0; r < 4; ++r)
    for (idx c = 0; c < 4; ++c) m(r, c) = cplx(double(r), double(c));
  CMatrix b = m.block(1, 2, 2, 2);
  EXPECT_EQ(b(0, 0), cplx(1.0, 2.0));
  EXPECT_EQ(b(1, 1), cplx(2.0, 3.0));

  CMatrix z(4, 4);
  z.set_block(2, 2, b);
  EXPECT_EQ(z(2, 2), cplx(1.0, 2.0));
  EXPECT_EQ(z(0, 0), cplx{0.0});
}

TEST(Matrix, AddBlockWithScale) {
  CMatrix m(2, 2, cplx{1.0});
  CMatrix b(2, 2, cplx{2.0});
  m.add_block(0, 0, b, cplx{0.0, 1.0});
  EXPECT_EQ(m(0, 0), cplx(1.0, 2.0));
}

TEST(Matrix, ArithmeticOperators) {
  CMatrix a(2, 2, cplx{1.0});
  CMatrix b(2, 2, cplx{2.0});
  CMatrix c = a + b;
  EXPECT_EQ(c(1, 1), cplx{3.0});
  c = c - a;
  EXPECT_EQ(c(0, 0), cplx{2.0});
  c = c * cplx{2.0};
  EXPECT_EQ(c(0, 1), cplx{4.0});
}

TEST(Matrix, TransposeAndDagger) {
  CMatrix m{{cplx{1, 2}, cplx{3, 4}}, {cplx{5, 6}, cplx{7, 8}}};
  CMatrix t = m.transpose();
  EXPECT_EQ(t(0, 1), cplx(5, 6));
  CMatrix d = nm::dagger(m);
  EXPECT_EQ(d(0, 1), cplx(5, -6));
  EXPECT_EQ(d(1, 0), cplx(3, -4));
}

TEST(Matrix, RandomIsDeterministic) {
  CMatrix a = nm::random_cmatrix(5, 5, 42);
  CMatrix b = nm::random_cmatrix(5, 5, 42);
  EXPECT_EQ(nm::max_abs_diff(a, b), 0.0);
  CMatrix c = nm::random_cmatrix(5, 5, 43);
  EXPECT_GT(nm::max_abs_diff(a, c), 0.0);
}

TEST(Matrix, ToComplex) {
  RMatrix r{{1.0, 2.0}, {3.0, 4.0}};
  CMatrix c = nm::to_complex(r);
  EXPECT_EQ(c(1, 0), cplx(3.0, 0.0));
}

// --- Workspace arena ---------------------------------------------------

TEST(Workspace, ReusesFreedBuffersWhileActive) {
  nm::Workspace ws;
  nm::WorkspaceScope scope(ws);
  { CMatrix warm(33, 17); }  // allocate then park the buffer in the pool
  const std::uint64_t heap_before = nm::matrix_heap_allocations();
  const std::uint64_t hits_before = nm::workspace_pool_hits();
  { CMatrix again(33, 17); }  // same byte size -> pool hit
  EXPECT_EQ(nm::matrix_heap_allocations(), heap_before);
  EXPECT_EQ(nm::workspace_pool_hits(), hits_before + 1);
}

TEST(Workspace, ScopesNestAndRestore) {
  nm::Workspace outer;
  EXPECT_EQ(nm::Workspace::current(), nullptr);
  {
    nm::WorkspaceScope a(outer);
    EXPECT_EQ(nm::Workspace::current(), &outer);
    nm::Workspace inner;
    {
      nm::WorkspaceScope b(inner);
      EXPECT_EQ(nm::Workspace::current(), &inner);
    }
    EXPECT_EQ(nm::Workspace::current(), &outer);
  }
  EXPECT_EQ(nm::Workspace::current(), nullptr);
}

TEST(Workspace, BuffersSurviveWorkspaceDestruction) {
  // A matrix allocated inside a scope may legally outlive the workspace;
  // its buffer must stay valid and be freed to the heap afterwards.
  CMatrix survivor;
  {
    nm::Workspace ws;
    nm::WorkspaceScope scope(ws);
    survivor = CMatrix(20, 20, cplx{1.0, 2.0});
  }
  EXPECT_EQ(survivor(19, 19), cplx(1.0, 2.0));
  survivor = CMatrix();  // releases a pooled chunk whose pool is gone
}

TEST(Workspace, PooledBytesReported) {
  nm::Workspace ws;
  {
    nm::WorkspaceScope scope(ws);
    { CMatrix m(10, 10); }
  }
  EXPECT_GE(ws.pooled_bytes(), 100u * sizeof(cplx));
}
