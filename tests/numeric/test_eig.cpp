#include "numeric/eig.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <complex>

#include "numeric/blas.hpp"
#include "numeric/matrix.hpp"

namespace nm = omenx::numeric;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {
// Sort eigenvalues lexicographically (re, im) for comparison.
std::vector<cplx> sorted(std::vector<cplx> v) {
  std::sort(v.begin(), v.end(), [](cplx a, cplx b) {
    if (a.real() != b.real()) return a.real() < b.real();
    return a.imag() < b.imag();
  });
  return v;
}

double residual(const CMatrix& a, const cplx lambda,
                const CMatrix& vecs, idx col) {
  const idx n = a.rows();
  double num = 0.0, den = 0.0;
  for (idx i = 0; i < n; ++i) {
    cplx av{0.0};
    for (idx j = 0; j < n; ++j) av += a(i, j) * vecs(j, col);
    num += std::norm(av - lambda * vecs(i, col));
    den += std::norm(vecs(i, col));
  }
  return std::sqrt(num / std::max(den, 1e-300));
}
}  // namespace

TEST(Eig, DiagonalMatrix) {
  CMatrix a(3, 3);
  a(0, 0) = cplx{1.0};
  a(1, 1) = cplx{2.0, 1.0};
  a(2, 2) = cplx{-3.0};
  auto r = nm::eig(a);
  auto vals = sorted(r.values);
  EXPECT_LT(std::abs(vals[0] - cplx{-3.0}), 1e-12);
  EXPECT_LT(std::abs(vals[1] - cplx{1.0}), 1e-12);
  EXPECT_LT(std::abs(vals[2] - cplx(2.0, 1.0)), 1e-12);
}

TEST(Eig, KnownTwoByTwo) {
  // [[0, 1], [-1, 0]] has eigenvalues +-i.
  CMatrix a{{cplx{0.0}, cplx{1.0}}, {cplx{-1.0}, cplx{0.0}}};
  auto r = nm::eig(a, false);
  auto vals = sorted(r.values);
  EXPECT_LT(std::abs(vals[0] - cplx(0.0, -1.0)), 1e-12);
  EXPECT_LT(std::abs(vals[1] - cplx(0.0, 1.0)), 1e-12);
}

TEST(Eig, TraceAndDetInvariants) {
  const idx n = 24;
  const CMatrix a = nm::random_cmatrix(n, n, 11);
  auto r = nm::eig(a, false);
  cplx tr_eig{0.0};
  for (auto v : r.values) tr_eig += v;
  cplx tr{0.0};
  for (idx i = 0; i < n; ++i) tr += a(i, i);
  EXPECT_LT(std::abs(tr - tr_eig), 1e-8 * n);
}

TEST(Eig, ResidualsSmall) {
  const idx n = 20;
  const CMatrix a = nm::random_cmatrix(n, n, 12);
  auto r = nm::eig(a);
  ASSERT_EQ(static_cast<idx>(r.values.size()), n);
  for (idx k = 0; k < n; ++k)
    EXPECT_LT(residual(a, r.values[static_cast<std::size_t>(k)], r.vectors, k),
              1e-8)
        << "eigenpair " << k;
}

TEST(Eig, HermitianInputGivesRealValues) {
  CMatrix a = nm::random_cmatrix(15, 15, 13);
  a = a + nm::dagger(a);
  auto r = nm::eig(a, false);
  for (auto v : r.values) EXPECT_LT(std::abs(v.imag()), 1e-8);
}

TEST(Eig, GeneralizedMatchesDirectConstruction) {
  // Pick B invertible, A = B * D with D diagonal: eigenvalues are D.
  const idx n = 10;
  CMatrix b = nm::random_cmatrix(n, n, 14);
  for (idx i = 0; i < n; ++i) b(i, i) += cplx{5.0};
  CMatrix d(n, n);
  for (idx i = 0; i < n; ++i) d(i, i) = cplx(double(i + 1), 0.5 * double(i));
  const CMatrix a = nm::matmul(b, d);
  auto r = nm::generalized_eig(a, b, false);
  auto vals = sorted(r.values);
  for (idx i = 0; i < n; ++i)
    EXPECT_LT(std::abs(vals[static_cast<std::size_t>(i)] -
                       cplx(double(i + 1), 0.5 * double(i))),
              1e-7);
}

TEST(Eig, ShiftInvertRecoversFiniteEigenvalues) {
  const idx n = 8;
  CMatrix b = CMatrix::identity(n);
  CMatrix a(n, n);
  for (idx i = 0; i < n; ++i) a(i, i) = cplx(double(i), 0.0);
  auto r = nm::shift_invert_eig(a, b, cplx{-0.7, 0.3}, false);
  auto vals = sorted(r.values);
  ASSERT_EQ(vals.size(), static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i)
    EXPECT_LT(std::abs(vals[static_cast<std::size_t>(i)] - cplx(double(i))),
              1e-9);
}

TEST(Eig, ShiftInvertDropsInfiniteEigenvalues) {
  // Singular B: pencil has infinite eigenvalues that must be discarded.
  CMatrix a{{cplx{2.0}, cplx{0.0}}, {cplx{0.0}, cplx{1.0}}};
  CMatrix b{{cplx{1.0}, cplx{0.0}}, {cplx{0.0}, cplx{0.0}}};
  auto r = nm::shift_invert_eig(a, b, cplx{0.1, 0.1}, false);
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_LT(std::abs(r.values[0] - cplx{2.0}), 1e-9);
}

TEST(Eig, HermitianJacobi) {
  const idx n = 12;
  CMatrix a = nm::random_cmatrix(n, n, 15);
  a = a + nm::dagger(a);
  auto r = nm::hermitian_eig(a);
  ASSERT_EQ(static_cast<idx>(r.values.size()), n);
  // Values ascending.
  for (idx i = 1; i < n; ++i)
    EXPECT_LE(r.values[static_cast<std::size_t>(i - 1)],
              r.values[static_cast<std::size_t>(i)]);
  // A v = lambda v.
  for (idx k = 0; k < n; ++k)
    EXPECT_LT(residual(a, cplx{r.values[static_cast<std::size_t>(k)]},
                       r.vectors, k),
              1e-9);
  // Orthonormal vectors.
  EXPECT_LT(nm::max_abs_diff(nm::matmul(r.vectors, r.vectors, 'C', 'N'),
                             CMatrix::identity(n)),
            1e-9);
}

// Property sweep over sizes: eigen-residuals stay small.
class EigSizes : public ::testing::TestWithParam<int> {};

TEST_P(EigSizes, ResidualsAcrossSizes) {
  const idx n = GetParam();
  const CMatrix a = nm::random_cmatrix(n, n, 300 + static_cast<unsigned>(n));
  auto r = nm::eig(a);
  for (idx k = 0; k < n; ++k)
    EXPECT_LT(residual(a, r.values[static_cast<std::size_t>(k)], r.vectors, k),
              1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSizes,
                         ::testing::Values(2, 3, 4, 6, 10, 16, 25, 40));
