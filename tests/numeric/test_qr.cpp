#include "numeric/qr.hpp"

#include <gtest/gtest.h>

#include "numeric/blas.hpp"
#include "numeric/matrix.hpp"

namespace nm = omenx::numeric;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

TEST(QR, ReconstructsInput) {
  const CMatrix a = nm::random_cmatrix(12, 7, 1);
  const auto [q, r] = nm::qr_decompose(a);
  EXPECT_LT(nm::max_abs_diff(nm::matmul(q, r), a), 1e-12);
}

TEST(QR, QHasOrthonormalColumns) {
  const CMatrix a = nm::random_cmatrix(15, 6, 2);
  const auto [q, r] = nm::qr_decompose(a);
  const CMatrix qhq = nm::matmul(q, q, 'C', 'N');
  EXPECT_LT(nm::max_abs_diff(qhq, CMatrix::identity(6)), 1e-12);
}

TEST(QR, RIsUpperTriangular) {
  const CMatrix a = nm::random_cmatrix(10, 10, 3);
  const auto [q, r] = nm::qr_decompose(a);
  for (idx i = 0; i < r.rows(); ++i)
    for (idx j = 0; j < i; ++j) EXPECT_EQ(r(i, j), cplx{0.0});
}

TEST(QR, WideMatrixThrows) {
  EXPECT_THROW(nm::qr_decompose(nm::random_cmatrix(3, 5, 4)),
               std::invalid_argument);
}

TEST(QR, OrthonormalizeFullRank) {
  const CMatrix a = nm::random_cmatrix(20, 5, 5);
  const CMatrix q = nm::orthonormalize(a);
  EXPECT_EQ(q.cols(), 5);
  EXPECT_LT(nm::max_abs_diff(nm::matmul(q, q, 'C', 'N'), CMatrix::identity(5)),
            1e-12);
}

TEST(QR, OrthonormalizeDetectsRankDeficiency) {
  CMatrix a = nm::random_cmatrix(20, 3, 6);
  // Append a duplicate column: rank stays 3 of 4.
  CMatrix aug(20, 4);
  aug.set_block(0, 0, a);
  for (idx i = 0; i < 20; ++i) aug(i, 3) = a(i, 0);
  const CMatrix q = nm::orthonormalize(aug);
  EXPECT_EQ(q.cols(), 3);
}

TEST(QR, OrthonormalizeZeroMatrix) {
  const CMatrix q = nm::orthonormalize(CMatrix(8, 3));
  EXPECT_EQ(q.cols(), 0);
}

TEST(QR, SpanIsPreserved) {
  // Columns of orthonormalize(a) must span col(a): projecting a onto the
  // basis reproduces a.
  const CMatrix a = nm::random_cmatrix(16, 4, 7);
  const CMatrix q = nm::orthonormalize(a);
  const CMatrix proj = nm::matmul(q, nm::matmul(q, a, 'C', 'N'));
  EXPECT_LT(nm::max_abs_diff(proj, a), 1e-11);
}
