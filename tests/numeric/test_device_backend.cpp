// numeric::DeviceBackend tests: the offload path must be bit-identical to
// the host backend on every batched entry point (the engine flips shape
// buckets between the two purely on cost, so any divergence would make the
// crossover visible in the physics), the operand-residency cache must
// transfer each stable id exactly once, and capacity overflow must degrade
// to the host path — never throw mid-sweep — releasing every reservation.
#include "numeric/device_backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "numeric/backend.hpp"
#include "numeric/blas.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "parallel/device.hpp"

namespace nm = omenx::numeric;
namespace pp = omenx::parallel;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

void expect_bit_identical(const CMatrix& a, const CMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (idx i = 0; i < a.rows(); ++i)
    for (idx j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j).real(), b(i, j).real()) << "(" << i << "," << j << ")";
      EXPECT_EQ(a(i, j).imag(), b(i, j).imag()) << "(" << i << "," << j << ")";
    }
}

CMatrix well_conditioned(idx n, unsigned seed) {
  CMatrix a = nm::random_cmatrix(n, n, seed);
  for (idx i = 0; i < n; ++i) a(i, i) += cplx{double(n), 0.5};
  return a;
}

}  // namespace

TEST(DeviceBackend, RejectsNothingButReportsPool) {
  pp::DevicePool pool(3);
  nm::DeviceBackend backend(pool);
  EXPECT_STREQ(backend.name(), "device");
  EXPECT_EQ(backend.lanes(), 3);
  EXPECT_TRUE(backend.offloads());
  EXPECT_FALSE(nm::host_backend().offloads());
}

TEST(DeviceBackend, DispatchCoversEveryItemExactlyOnce) {
  pp::DevicePool pool(4);
  nm::DeviceBackend backend(pool);
  std::vector<std::atomic<int>> hits(131);
  backend.dispatch("test_cover", hits.size(),
                   [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DeviceBackend, DispatchPropagatesFirstExceptionInItemOrder) {
  pp::DevicePool pool(2);
  nm::DeviceBackend backend(pool);
  try {
    backend.dispatch("test_throw", 16, [&](std::size_t i) {
      if (i == 3 || i == 9) throw std::runtime_error("kernel " + std::to_string(i));
    });
    FAIL() << "dispatch must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "kernel 3");
  }
}

TEST(DeviceBackend, NestedDispatchFromAKernelDegradesToSerial) {
  // A kernel issuing a batch must not enqueue behind itself on its own
  // in-order stream: the inner dispatch runs serially on the device worker.
  pp::DevicePool pool(2);
  nm::DeviceBackend backend(pool);
  std::atomic<int> total{0};
  backend.dispatch("outer", 6, [&](std::size_t) {
    backend.dispatch("inner", 6, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 36);
}

TEST(DeviceBackend, GemmBatchedBitIdenticalToHostAtEveryPoolSize) {
  const idx m = 13, n = 9, k = 11;
  const std::size_t batch = 12;
  const cplx alpha{-1.0, 0.25}, beta{0.5, -0.125};
  std::vector<CMatrix> as, bs, refs;
  for (std::size_t p = 0; p < batch; ++p) {
    as.push_back(nm::random_cmatrix(m, k, 100 + static_cast<unsigned>(p)));
    bs.push_back(nm::random_cmatrix(k, n, 200 + static_cast<unsigned>(p)));
    refs.push_back(nm::random_cmatrix(m, n, 300 + static_cast<unsigned>(p)));
  }
  std::vector<nm::GemmBatchItem> ref_items;
  for (std::size_t p = 0; p < batch; ++p)
    ref_items.push_back({as[p].data(), as[p].cols(), bs[p].data(), bs[p].cols(),
                         refs[p].data(), refs[p].cols()});
  nm::host_backend().gemm_batched('N', 'N', m, n, k, alpha, beta, ref_items);

  for (const int devices : {1, 2, 4}) {
    pp::DevicePool pool(devices);
    nm::DeviceBackend backend(pool);
    std::vector<CMatrix> cs;
    for (std::size_t p = 0; p < batch; ++p)
      cs.push_back(nm::random_cmatrix(m, n, 300 + static_cast<unsigned>(p)));
    std::vector<nm::GemmBatchItem> items;
    for (std::size_t p = 0; p < batch; ++p)
      items.push_back({as[p].data(), as[p].cols(), bs[p].data(), bs[p].cols(),
                       cs[p].data(), cs[p].cols()});
    backend.gemm_batched('N', 'N', m, n, k, alpha, beta, items);
    for (std::size_t p = 0; p < batch; ++p)
      expect_bit_identical(cs[p], refs[p]);
    EXPECT_EQ(backend.host_fallbacks(), 0u);
    // Every operand and result moved across the (emulated) bus.
    std::uint64_t h2d = 0, d2h = 0;
    for (int d = 0; d < devices; ++d) {
      h2d += pool.device(d).h2d_bytes();
      d2h += pool.device(d).d2h_bytes();
    }
    EXPECT_EQ(h2d, batch * 16u *
                       (static_cast<std::uint64_t>(m) * k +
                        static_cast<std::uint64_t>(k) * n +
                        static_cast<std::uint64_t>(m) * n));
    EXPECT_EQ(d2h, batch * 16u * static_cast<std::uint64_t>(m) * n);
  }
}

TEST(DeviceBackend, LuFactorAndSolveBatchedBitIdenticalAtEveryPoolSize) {
  const idx s = 17;
  const std::size_t batch = 9;
  std::vector<CMatrix> as, bs, left_bs;
  for (std::size_t p = 0; p < batch; ++p) {
    as.push_back(well_conditioned(s, 400 + static_cast<unsigned>(p)));
    bs.push_back(nm::random_cmatrix(s, 3 + static_cast<idx>(p % 2),
                                    500 + static_cast<unsigned>(p)));
    // X A = B needs B with s columns.
    left_bs.push_back(nm::random_cmatrix(s, s, 600 + static_cast<unsigned>(p)));
  }
  std::vector<const CMatrix*> a_ptrs, b_ptrs, left_ptrs;
  for (std::size_t p = 0; p < batch; ++p) {
    a_ptrs.push_back(&as[p]);
    b_ptrs.push_back(&bs[p]);
    left_ptrs.push_back(&left_bs[p]);
  }

  for (const int devices : {1, 2, 4}) {
    pp::DevicePool pool(devices);
    nm::DeviceBackend backend(pool);
    const auto factors = backend.lu_factor_batched(a_ptrs);
    ASSERT_EQ(factors.size(), batch);
    std::vector<const nm::LUFactor*> f_ptrs;
    for (const auto& f : factors) f_ptrs.push_back(&f);

    std::vector<CMatrix> xs, ys;
    backend.lu_solve_batched(f_ptrs, b_ptrs, xs);
    backend.lu_solve_left_batched(f_ptrs, left_ptrs, ys);
    ASSERT_EQ(xs.size(), batch);
    ASSERT_EQ(ys.size(), batch);
    for (std::size_t p = 0; p < batch; ++p) {
      const nm::LUFactor ref(as[p]);
      expect_bit_identical(xs[p], ref.solve(bs[p]));
      expect_bit_identical(ys[p], ref.solve_left(left_bs[p]));
    }
    EXPECT_EQ(backend.host_fallbacks(), 0u);
  }
}

TEST(DeviceBackend, CapacityOverflowFallsBackToHostBitIdentically) {
  // A pool too small for even one factor's workspace: the batched call must
  // release every reservation, run on the host path, and still produce the
  // exact same numbers.  Nothing may stay allocated afterwards.
  const idx s = 24;  // 2 * 16 * 24^2 = 18 KiB per item >> 1 KiB capacity
  const std::size_t batch = 5;
  std::vector<CMatrix> as;
  for (std::size_t p = 0; p < batch; ++p)
    as.push_back(well_conditioned(s, 800 + static_cast<unsigned>(p)));
  std::vector<const CMatrix*> a_ptrs;
  for (const auto& a : as) a_ptrs.push_back(&a);

  pp::DevicePool pool(2, /*memory_bytes=*/1024);
  nm::DeviceBackend backend(pool);
  const auto factors = backend.lu_factor_batched(a_ptrs);
  EXPECT_EQ(backend.host_fallbacks(), 1u);
  ASSERT_EQ(factors.size(), batch);
  for (std::size_t p = 0; p < batch; ++p) {
    const nm::LUFactor ref(as[p]);
    const CMatrix rhs = nm::random_cmatrix(s, 3, 900 + static_cast<unsigned>(p));
    expect_bit_identical(factors[p].solve(rhs), ref.solve(rhs));
  }
  // Reservations were released exactly once: the pool reads empty.
  EXPECT_EQ(pool.device(0).memory_used(), 0u);
  EXPECT_EQ(pool.device(1).memory_used(), 0u);
}

TEST(DeviceBackend, ResidencyCacheHitsAfterFirstStage) {
  pp::DevicePool pool(2);
  nm::DeviceBackend backend(pool);
  // First stage: miss (H2D paid); second: hit (no transfer).
  EXPECT_FALSE(backend.stage_operand(42, 1000));
  const auto h2d_warm = pool.device(42 % 2).h2d_bytes();
  EXPECT_TRUE(backend.stage_operand(42, 1000));
  EXPECT_TRUE(backend.stage_operand(42, 1000));
  EXPECT_EQ(pool.device(42 % 2).h2d_bytes(), h2d_warm);  // no re-transfer

  const auto stats = backend.residency().stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.resident_bytes, 1000u);

  // Id 0 is the "stream, don't cache" sentinel; zero bytes is a no-op.
  EXPECT_FALSE(backend.stage_operand(0, 500));
  EXPECT_FALSE(backend.stage_operand(0, 500));
  EXPECT_FALSE(backend.stage_operand(7, 0));

  backend.invalidate_residency();
  EXPECT_EQ(backend.residency().stats().resident_bytes, 0u);
  EXPECT_FALSE(backend.stage_operand(42, 1000));  // miss again after drop
}

TEST(DeviceBackend, ResidencyEvictsOldestWhenFullAndStreamsWhenHopeless) {
  // Capacity for two 400-byte operands per device; ids 0,2,4,... all land
  // on device 0.  A third distinct id must evict the oldest; an operand
  // larger than the whole device must stream without caching.
  pp::DevicePool pool(1, /*memory_bytes=*/1000);
  nm::ResidencyCache cache;
  EXPECT_EQ(cache.stage(10, 400, pool.device(0)),
            nm::ResidencyCache::Outcome::kMiss);
  EXPECT_EQ(cache.stage(20, 400, pool.device(0)),
            nm::ResidencyCache::Outcome::kMiss);
  EXPECT_EQ(cache.stage(10, 400, pool.device(0)),
            nm::ResidencyCache::Outcome::kHit);
  EXPECT_EQ(cache.stage(30, 400, pool.device(0)),
            nm::ResidencyCache::Outcome::kMiss);  // evicted id 10
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stage(10, 400, pool.device(0)),
            nm::ResidencyCache::Outcome::kMiss);  // id 10 gone

  EXPECT_EQ(cache.stage(99, 5000, pool.device(0)),
            nm::ResidencyCache::Outcome::kStreamed);
  EXPECT_GT(cache.stats().streamed, 0u);

  cache.invalidate();
  EXPECT_EQ(pool.device(0).memory_used(), 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(DeviceBackend, EmptyPoolViaSliceIsImpossibleAndCtorValidates) {
  // DevicePool's constructor and slice() both refuse to produce an empty
  // view, so DeviceBackend can only ever see >= 1 device; the ctor still
  // guards (documented contract).
  EXPECT_THROW(pp::DevicePool(0), std::invalid_argument);
  pp::DevicePool pool(2);
  EXPECT_THROW(pool.slice(0, 0), std::invalid_argument);
  EXPECT_THROW(pool.slice(2, 2), std::invalid_argument);
  EXPECT_THROW(pool.slice(-1, 3), std::invalid_argument);
}

TEST(DeviceBackend, ProcessWideBackendIsRegisteredAsDevice) {
  nm::Backend& dev = nm::device_backend();
  EXPECT_STREQ(dev.name(), "device");
  EXPECT_GE(dev.lanes(), 1);
  EXPECT_TRUE(dev.offloads());
  EXPECT_EQ(nm::find_backend("device"), &dev);
  // Registering the name again (another instance) must throw, not clobber.
  pp::DevicePool pool(1);
  static nm::DeviceBackend other(pool);
  EXPECT_THROW(nm::register_backend("device", &other), std::invalid_argument);
}

TEST(DeviceBackend, DuplicateRegistrationThrows) {
  class StubBackend : public nm::Backend {
   public:
    const char* name() const noexcept override { return "dup-test"; }
    int lanes() const noexcept override { return 1; }
    void dispatch(const char*, std::size_t n,
                  const std::function<void(std::size_t)>& fn) override {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    }
  };
  static StubBackend a, b;
  nm::register_backend("dup-test", &a);
  EXPECT_EQ(nm::find_backend("dup-test"), &a);
  EXPECT_THROW(nm::register_backend("dup-test", &b), std::invalid_argument);
  EXPECT_EQ(nm::find_backend("dup-test"), &a);  // original untouched
}
