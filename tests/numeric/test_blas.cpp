#include "numeric/blas.hpp"

#include <gtest/gtest.h>

#include "numeric/flops.hpp"
#include "numeric/matrix.hpp"

namespace nm = omenx::numeric;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {
// Naive reference multiply for validation.
CMatrix ref_matmul(const CMatrix& a, const CMatrix& b) {
  CMatrix c(a.rows(), b.cols());
  for (idx i = 0; i < a.rows(); ++i)
    for (idx k = 0; k < a.cols(); ++k)
      for (idx j = 0; j < b.cols(); ++j) c(i, j) += a(i, k) * b(k, j);
  return c;
}
}  // namespace

TEST(Blas, GemmMatchesReference) {
  const CMatrix a = nm::random_cmatrix(37, 23, 1);
  const CMatrix b = nm::random_cmatrix(23, 41, 2);
  EXPECT_LT(nm::max_abs_diff(nm::matmul(a, b), ref_matmul(a, b)), 1e-12);
}

TEST(Blas, GemmLargeBlockedPath) {
  const CMatrix a = nm::random_cmatrix(130, 140, 3);
  const CMatrix b = nm::random_cmatrix(140, 150, 4);
  EXPECT_LT(nm::max_abs_diff(nm::matmul(a, b), ref_matmul(a, b)), 1e-11);
}

TEST(Blas, GemmAlphaBeta) {
  const CMatrix a = nm::random_cmatrix(8, 8, 5);
  const CMatrix b = nm::random_cmatrix(8, 8, 6);
  CMatrix c = nm::random_cmatrix(8, 8, 7);
  const CMatrix c0 = c;
  const cplx alpha{2.0, 1.0}, beta{0.5, -0.5};
  nm::gemm(a, b, c, alpha, beta);
  CMatrix expected = ref_matmul(a, b) * alpha + c0 * beta;
  EXPECT_LT(nm::max_abs_diff(c, expected), 1e-12);
}

TEST(Blas, GemmTransposeOps) {
  const CMatrix a = nm::random_cmatrix(9, 12, 8);
  const CMatrix b = nm::random_cmatrix(9, 7, 9);
  // C = A^T B
  CMatrix c = nm::matmul(a, b, 'T', 'N');
  EXPECT_LT(nm::max_abs_diff(c, ref_matmul(a.transpose(), b)), 1e-12);
  // C = A^H B
  c = nm::matmul(a, b, 'C', 'N');
  EXPECT_LT(nm::max_abs_diff(c, ref_matmul(nm::dagger(a), b)), 1e-12);
}

TEST(Blas, GemmInnerDimMismatchThrows) {
  const CMatrix a = nm::random_cmatrix(3, 4, 10);
  const CMatrix b = nm::random_cmatrix(5, 3, 11);
  CMatrix c;
  EXPECT_THROW(nm::gemm(a, b, c), std::invalid_argument);
}

TEST(Blas, Gemv) {
  const CMatrix a = nm::random_cmatrix(6, 4, 12);
  std::vector<cplx> x(4, cplx{1.0, -1.0});
  std::vector<cplx> y;
  nm::gemv(a, x, y);
  for (idx i = 0; i < 6; ++i) {
    cplx acc{0.0};
    for (idx j = 0; j < 4; ++j) acc += a(i, j) * x[j];
    EXPECT_LT(std::abs(y[i] - acc), 1e-13);
  }
}

TEST(Blas, FrobNorm) {
  CMatrix a(2, 2);
  a(0, 0) = cplx{3.0};
  a(1, 1) = cplx{0.0, 4.0};
  EXPECT_NEAR(nm::frob_norm(a), 5.0, 1e-14);
}

TEST(Blas, IsHermitian) {
  CMatrix a = nm::random_cmatrix(10, 10, 13);
  CMatrix h = a + nm::dagger(a);
  EXPECT_TRUE(nm::is_hermitian(h));
  h(3, 7) += cplx{0.0, 0.1};
  EXPECT_FALSE(nm::is_hermitian(h));
}

TEST(Blas, FlopCountingGemm) {
  nm::FlopCounter::reset();
  const CMatrix a = nm::random_cmatrix(10, 20, 14);
  const CMatrix b = nm::random_cmatrix(20, 30, 15);
  nm::FlopCounter::reset();
  nm::matmul(a, b);
  EXPECT_EQ(nm::FlopCounter::total(), 10u * 20u * 30u * 8u);
}

TEST(Blas, ThreadParallelismToggle) {
  nm::set_thread_parallelism(false);
  EXPECT_FALSE(nm::thread_parallelism());
  const CMatrix a = nm::random_cmatrix(70, 70, 16);
  const CMatrix b = nm::random_cmatrix(70, 70, 17);
  CMatrix serial = nm::matmul(a, b);
  nm::set_thread_parallelism(true);
  EXPECT_TRUE(nm::thread_parallelism());
  CMatrix parallel = nm::matmul(a, b);
  EXPECT_LT(nm::max_abs_diff(serial, parallel), 1e-13);
}

namespace {
// op(M) materialized for the reference path.
CMatrix ref_op(const CMatrix& m, char op) {
  if (op == 'N') return m;
  if (op == 'T') return m.transpose();
  return nm::dagger(m);
}
}  // namespace

// All nine op_a x op_b combinations on non-square operands against the
// naive triple loop: transposition/conjugation folded into packing must
// match the materialized reference exactly.
TEST(Blas, GemmAllOpCombinations) {
  // op(A) must be 11x6, op(B) 6x9.
  const CMatrix a_n = nm::random_cmatrix(11, 6, 31);
  const CMatrix a_t = nm::random_cmatrix(6, 11, 32);
  const CMatrix b_n = nm::random_cmatrix(6, 9, 33);
  const CMatrix b_t = nm::random_cmatrix(9, 6, 34);
  const char ops[] = {'N', 'T', 'C'};
  for (char op_a : ops) {
    for (char op_b : ops) {
      const CMatrix& a = op_a == 'N' ? a_n : a_t;
      const CMatrix& b = op_b == 'N' ? b_n : b_t;
      const CMatrix expect = ref_matmul(ref_op(a, op_a), ref_op(b, op_b));
      const CMatrix got = nm::matmul(a, b, op_a, op_b);
      EXPECT_LT(nm::max_abs_diff(got, expect), 1e-12)
          << "op_a=" << op_a << " op_b=" << op_b;
    }
  }
}

// Ops combined with alpha/beta accumulation into an existing C.
TEST(Blas, GemmOpsWithAlphaBeta) {
  const CMatrix a = nm::random_cmatrix(13, 8, 35);   // used as A^C: 8x13
  const CMatrix b = nm::random_cmatrix(7, 13, 36);   // used as B^T: 13x7
  CMatrix c = nm::random_cmatrix(8, 7, 37);
  const CMatrix c0 = c;
  const cplx alpha{1.5, -0.5}, beta{-0.25, 2.0};
  nm::gemm(a, b, c, alpha, beta, 'C', 'T');
  const CMatrix expect =
      ref_matmul(nm::dagger(a), b.transpose()) * alpha + c0 * beta;
  EXPECT_LT(nm::max_abs_diff(c, expect), 1e-12);
}

// Sizes straddling every packing boundary (micro-tile, panel, slab edges).
TEST(Blas, GemmPackingEdgeSizes) {
  for (idx m : {1, 3, 4, 5, 95, 97}) {
    for (idx n : {1, 23, 24, 25}) {
      const idx k = 7;
      const CMatrix a = nm::random_cmatrix(m, k, 40 + unsigned(m));
      const CMatrix b = nm::random_cmatrix(k, n, 50 + unsigned(n));
      EXPECT_LT(nm::max_abs_diff(nm::matmul(a, b), ref_matmul(a, b)), 1e-12)
          << m << "x" << k << "x" << n;
    }
  }
}

// Regression for the seed's apply_op bug (it copied the full operand even
// for op 'N').  The packed kernel must do zero operand copies and zero
// buffer allocations once the output is right-sized and the per-thread
// packing scratch is warm.
TEST(Blas, GemmSteadyStateDoesNotAllocate) {
  const CMatrix a = nm::random_cmatrix(96, 96, 60);
  const CMatrix b = nm::random_cmatrix(96, 96, 61);
  CMatrix c(96, 96);
  nm::gemm(a, b, c);  // warm up packing scratch
  const std::uint64_t before = nm::matrix_heap_allocations();
  nm::gemm(a, b, c);
  nm::gemm(a, b, c, cplx{2.0}, cplx{1.0}, 'T', 'C');
  EXPECT_EQ(nm::matrix_heap_allocations(), before);
}
