#include "numeric/blas.hpp"

#include <gtest/gtest.h>

#include "numeric/flops.hpp"
#include "numeric/matrix.hpp"

namespace nm = omenx::numeric;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {
// Naive reference multiply for validation.
CMatrix ref_matmul(const CMatrix& a, const CMatrix& b) {
  CMatrix c(a.rows(), b.cols());
  for (idx i = 0; i < a.rows(); ++i)
    for (idx k = 0; k < a.cols(); ++k)
      for (idx j = 0; j < b.cols(); ++j) c(i, j) += a(i, k) * b(k, j);
  return c;
}
}  // namespace

TEST(Blas, GemmMatchesReference) {
  const CMatrix a = nm::random_cmatrix(37, 23, 1);
  const CMatrix b = nm::random_cmatrix(23, 41, 2);
  EXPECT_LT(nm::max_abs_diff(nm::matmul(a, b), ref_matmul(a, b)), 1e-12);
}

TEST(Blas, GemmLargeBlockedPath) {
  const CMatrix a = nm::random_cmatrix(130, 140, 3);
  const CMatrix b = nm::random_cmatrix(140, 150, 4);
  EXPECT_LT(nm::max_abs_diff(nm::matmul(a, b), ref_matmul(a, b)), 1e-11);
}

TEST(Blas, GemmAlphaBeta) {
  const CMatrix a = nm::random_cmatrix(8, 8, 5);
  const CMatrix b = nm::random_cmatrix(8, 8, 6);
  CMatrix c = nm::random_cmatrix(8, 8, 7);
  const CMatrix c0 = c;
  const cplx alpha{2.0, 1.0}, beta{0.5, -0.5};
  nm::gemm(a, b, c, alpha, beta);
  CMatrix expected = ref_matmul(a, b) * alpha + c0 * beta;
  EXPECT_LT(nm::max_abs_diff(c, expected), 1e-12);
}

TEST(Blas, GemmTransposeOps) {
  const CMatrix a = nm::random_cmatrix(9, 12, 8);
  const CMatrix b = nm::random_cmatrix(9, 7, 9);
  // C = A^T B
  CMatrix c = nm::matmul(a, b, 'T', 'N');
  EXPECT_LT(nm::max_abs_diff(c, ref_matmul(a.transpose(), b)), 1e-12);
  // C = A^H B
  c = nm::matmul(a, b, 'C', 'N');
  EXPECT_LT(nm::max_abs_diff(c, ref_matmul(nm::dagger(a), b)), 1e-12);
}

TEST(Blas, GemmInnerDimMismatchThrows) {
  const CMatrix a = nm::random_cmatrix(3, 4, 10);
  const CMatrix b = nm::random_cmatrix(5, 3, 11);
  CMatrix c;
  EXPECT_THROW(nm::gemm(a, b, c), std::invalid_argument);
}

TEST(Blas, Gemv) {
  const CMatrix a = nm::random_cmatrix(6, 4, 12);
  std::vector<cplx> x(4, cplx{1.0, -1.0});
  std::vector<cplx> y;
  nm::gemv(a, x, y);
  for (idx i = 0; i < 6; ++i) {
    cplx acc{0.0};
    for (idx j = 0; j < 4; ++j) acc += a(i, j) * x[j];
    EXPECT_LT(std::abs(y[i] - acc), 1e-13);
  }
}

TEST(Blas, FrobNorm) {
  CMatrix a(2, 2);
  a(0, 0) = cplx{3.0};
  a(1, 1) = cplx{0.0, 4.0};
  EXPECT_NEAR(nm::frob_norm(a), 5.0, 1e-14);
}

TEST(Blas, IsHermitian) {
  CMatrix a = nm::random_cmatrix(10, 10, 13);
  CMatrix h = a + nm::dagger(a);
  EXPECT_TRUE(nm::is_hermitian(h));
  h(3, 7) += cplx{0.0, 0.1};
  EXPECT_FALSE(nm::is_hermitian(h));
}

TEST(Blas, FlopCountingGemm) {
  nm::FlopCounter::reset();
  const CMatrix a = nm::random_cmatrix(10, 20, 14);
  const CMatrix b = nm::random_cmatrix(20, 30, 15);
  nm::FlopCounter::reset();
  nm::matmul(a, b);
  EXPECT_EQ(nm::FlopCounter::total(), 10u * 20u * 30u * 8u);
}

TEST(Blas, ThreadParallelismToggle) {
  nm::set_thread_parallelism(false);
  EXPECT_FALSE(nm::thread_parallelism());
  const CMatrix a = nm::random_cmatrix(70, 70, 16);
  const CMatrix b = nm::random_cmatrix(70, 70, 17);
  CMatrix serial = nm::matmul(a, b);
  nm::set_thread_parallelism(true);
  EXPECT_TRUE(nm::thread_parallelism());
  CMatrix parallel = nm::matmul(a, b);
  EXPECT_LT(nm::max_abs_diff(serial, parallel), 1e-13);
}
