#include "numeric/cholesky.hpp"

#include <gtest/gtest.h>

#include "numeric/blas.hpp"
#include "numeric/matrix.hpp"

namespace nm = omenx::numeric;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {
CMatrix random_hpd(idx n, unsigned seed) {
  const CMatrix a = nm::random_cmatrix(n, n, seed);
  CMatrix h = nm::matmul(a, a, 'N', 'C');
  for (idx i = 0; i < n; ++i) h(i, i) += cplx{0.5};
  return h;
}
}  // namespace

TEST(Cholesky, Reconstructs) {
  const CMatrix a = random_hpd(14, 1);
  const CMatrix l = nm::cholesky(a);
  EXPECT_LT(nm::max_abs_diff(nm::matmul(l, l, 'N', 'C'), a), 1e-10);
}

TEST(Cholesky, LIsLowerTriangular) {
  const CMatrix l = nm::cholesky(random_hpd(8, 2));
  for (idx i = 0; i < 8; ++i)
    for (idx j = i + 1; j < 8; ++j) EXPECT_EQ(l(i, j), cplx{0.0});
}

TEST(Cholesky, IndefiniteThrows) {
  CMatrix a = CMatrix::identity(3);
  a(2, 2) = cplx{-1.0};
  EXPECT_THROW(nm::cholesky(a), std::runtime_error);
}

TEST(Cholesky, IsHpdPredicate) {
  EXPECT_TRUE(nm::is_hpd(random_hpd(6, 3)));
  CMatrix bad = CMatrix::identity(4);
  bad(0, 0) = cplx{-2.0};
  EXPECT_FALSE(nm::is_hpd(bad));
}

TEST(Cholesky, NonSquareThrows) {
  EXPECT_THROW(nm::cholesky(CMatrix(3, 4)), std::invalid_argument);
}
