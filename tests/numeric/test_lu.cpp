#include "numeric/lu.hpp"

#include <gtest/gtest.h>

#include "numeric/blas.hpp"
#include "numeric/matrix.hpp"

namespace nm = omenx::numeric;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {
CMatrix well_conditioned(idx n, unsigned seed) {
  CMatrix a = nm::random_cmatrix(n, n, seed);
  for (idx i = 0; i < n; ++i) a(i, i) += cplx{double(n), 0.0};
  return a;
}
}  // namespace

TEST(LU, SolveSingleRhs) {
  const CMatrix a = well_conditioned(12, 1);
  const CMatrix x_true = nm::random_cmatrix(12, 1, 2);
  const CMatrix b = nm::matmul(a, x_true);
  const CMatrix x = nm::solve(a, b);
  EXPECT_LT(nm::max_abs_diff(x, x_true), 1e-11);
}

TEST(LU, SolveMultiRhs) {
  const CMatrix a = well_conditioned(20, 3);
  const CMatrix x_true = nm::random_cmatrix(20, 7, 4);
  const CMatrix b = nm::matmul(a, x_true);
  const CMatrix x = nm::LUFactor(a).solve(b);
  EXPECT_LT(nm::max_abs_diff(x, x_true), 1e-10);
}

TEST(LU, NoPivotVariantOnDiagonallyDominant) {
  const CMatrix a = well_conditioned(15, 5);
  const CMatrix x_true = nm::random_cmatrix(15, 3, 6);
  const CMatrix b = nm::matmul(a, x_true);
  const CMatrix x = nm::solve(a, b, nm::Pivoting::kNone);
  EXPECT_LT(nm::max_abs_diff(x, x_true), 1e-9);
}

TEST(LU, Inverse) {
  const CMatrix a = well_conditioned(10, 7);
  const CMatrix ainv = nm::inverse(a);
  EXPECT_LT(nm::max_abs_diff(nm::matmul(a, ainv), CMatrix::identity(10)),
            1e-11);
  EXPECT_LT(nm::max_abs_diff(nm::matmul(ainv, a), CMatrix::identity(10)),
            1e-11);
}

TEST(LU, SolveLeft) {
  const CMatrix a = well_conditioned(9, 8);
  const CMatrix x_true = nm::random_cmatrix(4, 9, 9);
  const CMatrix b = nm::matmul(x_true, a);
  const CMatrix x = nm::LUFactor(a).solve_left(b);
  EXPECT_LT(nm::max_abs_diff(x, x_true), 1e-10);
}

TEST(LU, SingularThrows) {
  CMatrix a(3, 3);  // all zeros
  EXPECT_THROW(nm::LUFactor{a}, std::runtime_error);
}

TEST(LU, NonSquareThrows) {
  CMatrix a(3, 4);
  EXPECT_THROW(nm::LUFactor{a}, std::invalid_argument);
}

TEST(LU, PivotingHandlesZeroDiagonal) {
  // Permutation-like matrix with zero on the diagonal requires pivoting.
  CMatrix a{{cplx{0.0}, cplx{1.0}}, {cplx{1.0}, cplx{0.0}}};
  const CMatrix b{{cplx{2.0}}, {cplx{3.0}}};
  const CMatrix x = nm::solve(a, b);
  EXPECT_LT(std::abs(x(0, 0) - cplx{3.0}), 1e-14);
  EXPECT_LT(std::abs(x(1, 0) - cplx{2.0}), 1e-14);
}

TEST(LU, LogAbsDet) {
  CMatrix a(2, 2);
  a(0, 0) = cplx{2.0};
  a(1, 1) = cplx{3.0};
  nm::LUFactor lu(a);
  EXPECT_NEAR(lu.log_abs_det(), std::log(6.0), 1e-12);
}

// Property sweep: random systems of several sizes round-trip.
class LURoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LURoundTrip, SolveRecoversSolution) {
  const idx n = GetParam();
  const CMatrix a = well_conditioned(n, 100 + static_cast<unsigned>(n));
  const CMatrix x_true = nm::random_cmatrix(n, 5, 200 + static_cast<unsigned>(n));
  const CMatrix b = nm::matmul(a, x_true);
  EXPECT_LT(nm::max_abs_diff(nm::solve(a, b), x_true), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LURoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 17, 33, 64, 100));

// The blocked right-looking factorization must reproduce the unblocked
// reference (panel = 1): identical pivot sequence, matching factors and
// solutions up to GEMM-reordering roundoff.
TEST(LU, BlockedMatchesUnblockedReference) {
  for (idx n : {64, 150, 257}) {
    const CMatrix a = well_conditioned(n, 300 + unsigned(n));
    const nm::LUFactor blocked(a, nm::Pivoting::kPartial);
    const nm::LUFactor unblocked(a, nm::Pivoting::kPartial, /*panel=*/1);
    ASSERT_EQ(blocked.pivots().size(), unblocked.pivots().size());
    for (std::size_t k = 0; k < blocked.pivots().size(); ++k)
      EXPECT_EQ(blocked.pivots()[k], unblocked.pivots()[k]) << "k=" << k;
    EXPECT_NEAR(blocked.log_abs_det(), unblocked.log_abs_det(),
                1e-9 * std::abs(unblocked.log_abs_det()) + 1e-9);
    const CMatrix rhs = nm::random_cmatrix(n, 4, 400 + unsigned(n));
    EXPECT_LT(nm::max_abs_diff(blocked.solve(rhs), unblocked.solve(rhs)),
              1e-9);
  }
}

TEST(LU, BlockedNoPivotMatchesUnblocked) {
  const idx n = 130;
  const CMatrix a = well_conditioned(n, 77);
  const nm::LUFactor blocked(a, nm::Pivoting::kNone);
  const nm::LUFactor unblocked(a, nm::Pivoting::kNone, /*panel=*/1);
  const CMatrix rhs = nm::random_cmatrix(n, 3, 78);
  EXPECT_LT(nm::max_abs_diff(blocked.solve(rhs), unblocked.solve(rhs)), 1e-9);
}

// A panel-crossing solve still satisfies A x = b directly.
TEST(LU, BlockedSolveResidualLarge) {
  const idx n = 200;
  const CMatrix a = well_conditioned(n, 88);
  const CMatrix x_true = nm::random_cmatrix(n, 6, 89);
  const CMatrix b = nm::matmul(a, x_true);
  const CMatrix x = nm::LUFactor(a).solve(b);
  EXPECT_LT(nm::max_abs_diff(x, x_true), 1e-9);
}
