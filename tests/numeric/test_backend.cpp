// numeric::Backend parity tests: every batched entry point must be
// bit-identical — not merely close — to the scalar kernels it fuses, on
// every item of the batch.  The engine's batched sweep path relies on this
// to keep spectra and charge reproducible between batched and unbatched
// runs (and across world sizes / work stealing, which change the batch
// composition).
#include "numeric/backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "blockmat/block_tridiag.hpp"
#include "numeric/blas.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "parallel/device.hpp"
#include "solvers/block_lu.hpp"
#include "solvers/solver.hpp"

namespace bm = omenx::blockmat;
namespace nm = omenx::numeric;
namespace sv = omenx::solvers;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

void expect_bit_identical(const CMatrix& a, const CMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (idx i = 0; i < a.rows(); ++i)
    for (idx j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j).real(), b(i, j).real()) << "(" << i << "," << j << ")";
      EXPECT_EQ(a(i, j).imag(), b(i, j).imag()) << "(" << i << "," << j << ")";
    }
}

CMatrix well_conditioned(idx n, unsigned seed) {
  CMatrix a = nm::random_cmatrix(n, n, seed);
  for (idx i = 0; i < n; ++i) a(i, i) += cplx{double(n), 0.5};
  return a;
}

bm::BlockTridiag random_system(idx nb, idx s, unsigned seed) {
  bm::BlockTridiag t(nb, s);
  for (idx i = 0; i < nb; ++i) {
    t.diag(i) = nm::random_cmatrix(s, s, seed + static_cast<unsigned>(i));
    for (idx d = 0; d < s; ++d) t.diag(i)(d, d) += cplx{6.0, 0.5};
    if (i + 1 < nb) {
      t.upper(i) =
          nm::random_cmatrix(s, s, seed + 1000 + static_cast<unsigned>(i));
      t.lower(i) =
          nm::random_cmatrix(s, s, seed + 2000 + static_cast<unsigned>(i));
    }
  }
  return t;
}

}  // namespace

TEST(Backend, HostIsRegistered) {
  EXPECT_STREQ(nm::host_backend().name(), "host");
  EXPECT_GE(nm::host_backend().lanes(), 1);
  EXPECT_EQ(nm::find_backend("host"), &nm::host_backend());
  EXPECT_EQ(nm::find_backend("no-such-backend"), nullptr);
  const auto names = nm::registered_backends();
  EXPECT_NE(std::find(names.begin(), names.end(), "host"), names.end());
}

TEST(Backend, DispatchCoversEveryItemExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  nm::host_backend().dispatch("test_cover", hits.size(),
                              [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Backend, DispatchPropagatesFirstException) {
  EXPECT_THROW(nm::host_backend().dispatch(
                   "test_throw", 16,
                   [&](std::size_t i) {
                     if (i % 2 == 1) throw std::runtime_error("lane failure");
                   }),
               std::runtime_error);
}

TEST(Backend, NestedDispatchFromALaneDegradesToSerial) {
  // A batched kernel that itself issues a batch must not deadlock on the
  // shared pool: the inner dispatch runs serially on the lane.
  std::atomic<int> total{0};
  nm::host_backend().dispatch("outer", 8, [&](std::size_t) {
    nm::host_backend().dispatch("inner", 8,
                                [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(Backend, GemmBatchedBitIdenticalToScalarLoop) {
  const idx m = 13, n = 9, k = 11;
  const std::size_t batch = 12;
  std::vector<CMatrix> as, bs, cs, refs;
  for (std::size_t p = 0; p < batch; ++p) {
    as.push_back(nm::random_cmatrix(m, k, 100 + static_cast<unsigned>(p)));
    bs.push_back(nm::random_cmatrix(k, n, 200 + static_cast<unsigned>(p)));
    cs.push_back(nm::random_cmatrix(m, n, 300 + static_cast<unsigned>(p)));
    refs.push_back(cs.back());
  }
  const cplx alpha{-1.0, 0.25}, beta{0.5, -0.125};
  for (std::size_t p = 0; p < batch; ++p)
    nm::gemm(as[p], bs[p], refs[p], alpha, beta);

  std::vector<nm::GemmBatchItem> items;
  for (std::size_t p = 0; p < batch; ++p)
    items.push_back({as[p].data(), as[p].cols(), bs[p].data(), bs[p].cols(),
                     cs[p].data(), cs[p].cols()});
  nm::host_backend().gemm_batched('N', 'N', m, n, k, alpha, beta, items);
  for (std::size_t p = 0; p < batch; ++p) expect_bit_identical(cs[p], refs[p]);
}

TEST(Backend, LuFactorAndSolveBatchedBitIdentical) {
  const idx s = 17;
  const std::size_t batch = 9;
  std::vector<CMatrix> as, bs;
  for (std::size_t p = 0; p < batch; ++p) {
    as.push_back(well_conditioned(s, 400 + static_cast<unsigned>(p)));
    bs.push_back(
        nm::random_cmatrix(s, 3 + static_cast<idx>(p % 2),
                           500 + static_cast<unsigned>(p)));
  }
  std::vector<const CMatrix*> a_ptrs, b_ptrs;
  for (std::size_t p = 0; p < batch; ++p) {
    a_ptrs.push_back(&as[p]);
    b_ptrs.push_back(&bs[p]);
  }
  auto factors = nm::host_backend().lu_factor_batched(a_ptrs);
  ASSERT_EQ(factors.size(), batch);
  std::vector<const nm::LUFactor*> f_ptrs;
  for (const auto& f : factors) f_ptrs.push_back(&f);

  std::vector<CMatrix> xs;
  nm::host_backend().lu_solve_batched(f_ptrs, b_ptrs, xs);
  ASSERT_EQ(xs.size(), batch);
  for (std::size_t p = 0; p < batch; ++p) {
    const nm::LUFactor ref(as[p]);
    expect_bit_identical(xs[p], ref.solve(bs[p]));
  }
}

TEST(Backend, LuSolveLeftBatchedBitIdentical) {
  const idx s = 12;
  const std::size_t batch = 7;
  std::vector<CMatrix> as, bs;
  for (std::size_t p = 0; p < batch; ++p) {
    as.push_back(well_conditioned(s, 600 + static_cast<unsigned>(p)));
    bs.push_back(nm::random_cmatrix(s, s, 700 + static_cast<unsigned>(p)));
  }
  std::vector<const CMatrix*> a_ptrs, b_ptrs;
  for (std::size_t p = 0; p < batch; ++p) {
    a_ptrs.push_back(&as[p]);
    b_ptrs.push_back(&bs[p]);
  }
  const auto factors = nm::host_backend().lu_factor_batched(a_ptrs);
  std::vector<const nm::LUFactor*> f_ptrs;
  for (const auto& f : factors) f_ptrs.push_back(&f);
  std::vector<CMatrix> xs;
  nm::host_backend().lu_solve_left_batched(f_ptrs, b_ptrs, xs);
  for (std::size_t p = 0; p < batch; ++p) {
    const nm::LUFactor ref(as[p]);
    expect_bit_identical(xs[p], ref.solve_left(bs[p]));
  }
}

TEST(Backend, BlockTridiagFactorBatchedBitIdenticalToScalar) {
  const idx nb = 6, s = 5;
  const std::size_t batch = 8;
  std::vector<bm::BlockTridiag> systems;
  for (std::size_t p = 0; p < batch; ++p)
    systems.push_back(random_system(nb, s, 800 + 10 * static_cast<unsigned>(p)));
  std::vector<const bm::BlockTridiag*> ptrs;
  for (const auto& t : systems) ptrs.push_back(&t);

  std::vector<sv::BlockTridiagLU> batched;
  sv::BlockTridiagLU::factor_batched(batched, ptrs, nm::host_backend());
  ASSERT_EQ(batched.size(), batch);

  for (std::size_t p = 0; p < batch; ++p) {
    const CMatrix b = nm::random_cmatrix(systems[p].dim(), 4,
                                         900 + static_cast<unsigned>(p));
    sv::BlockTridiagLU scalar;
    scalar.factor(systems[p]);
    expect_bit_identical(batched[p].solve(b), scalar.solve(b));
  }
}

namespace {

/// Run one solver's batched boundary path against the scalar path of a
/// *fresh* instance on identical operands; every item must match to the bit.
void solver_batched_parity(const std::string& solver_name,
                           const sv::SolverContext& ctx = {}) {
  const idx nb = 5, s = 4, cols = 3;
  const std::size_t batch = 6;
  std::vector<bm::BlockTridiag> systems;
  std::vector<CMatrix> sig_l, sig_r, b_top, b_bot;
  for (std::size_t p = 0; p < batch; ++p) {
    const auto u = static_cast<unsigned>(p);
    systems.push_back(random_system(nb, s, 1100 + 10 * u));
    sig_l.push_back(nm::random_cmatrix(s, s, 1200 + u) * cplx{0.1, 0.0});
    sig_r.push_back(nm::random_cmatrix(s, s, 1300 + u) * cplx{0.1, 0.0});
    b_top.push_back(nm::random_cmatrix(s, cols, 1400 + u));
    b_bot.push_back(nm::random_cmatrix(s, cols, 1500 + u));
  }

  const auto batched_solver = sv::make_solver(solver_name, ctx);
  std::vector<const bm::BlockTridiag*> ptrs;
  std::vector<sv::BoundaryProblem> problems;
  for (std::size_t p = 0; p < batch; ++p) {
    ptrs.push_back(&systems[p]);
    problems.push_back(
        {&systems[p], &sig_l[p], &sig_r[p], &b_top[p], &b_bot[p]});
  }
  batched_solver->prepare_batched(ptrs, nm::host_backend());
  const auto xs =
      batched_solver->solve_boundary_batched(problems, nm::host_backend());
  ASSERT_EQ(xs.size(), batch);

  for (std::size_t p = 0; p < batch; ++p) {
    const auto scalar = sv::make_solver(solver_name, ctx);
    scalar->prepare(systems[p]);
    const CMatrix ref = scalar->solve_boundary(systems[p], sig_l[p], sig_r[p],
                                               b_top[p], b_bot[p]);
    expect_bit_identical(xs[p], ref);
  }
}

}  // namespace

TEST(Backend, BlockLuSolverBatchedParity) { solver_batched_parity("block_lu"); }

TEST(Backend, RgfSolverBatchedParity) { solver_batched_parity("rgf"); }

TEST(Backend, SplitSolveSolverBatchedParity) {
  // The batched Step 1 runs the serial SPIKE block-column kernel on host
  // lanes; the scalar reference runs the device-pool variant.  PR 3's
  // guarantee — serial/pool/spatial Step 1 bit-identical for equal
  // partition counts — is what makes the comparison exact.
  omenx::parallel::DevicePool pool(2);
  sv::SolverContext ctx;
  ctx.pool = &pool;
  solver_batched_parity("splitsolve", ctx);
}

TEST(Backend, DefaultBatchedPathMatchesScalarForNonBatchable) {
  // A solver without kBatchable still honors the batched entry points via
  // the base-class scalar loop (the engine never calls them in that case,
  // but the contract holds).
  EXPECT_EQ(sv::algorithm_capabilities(sv::SolverAlgorithm::kBcr) &
                sv::kBatchable,
            0u);
  solver_batched_parity("bcr");
}

TEST(Backend, RegisterAndFindCustomBackend) {
  class NullBackend : public nm::Backend {
   public:
    const char* name() const noexcept override { return "null"; }
    int lanes() const noexcept override { return 1; }
    void dispatch(const char*, std::size_t n,
                  const std::function<void(std::size_t)>& fn) override {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    }
  };
  static NullBackend null_backend;
  nm::register_backend("null", &null_backend);
  EXPECT_EQ(nm::find_backend("null"), &null_backend);
  const auto names = nm::registered_backends();
  EXPECT_NE(std::find(names.begin(), names.end(), "null"), names.end());
}
