// Solver matrix bench: every registered backend crossed with every spatial
// energy-group width, on a 4-rank world in the energy-exhausted regime —
// ONE (k, E) task, four ranks — the situation Fig. 9's third level exists
// for.  With width 1 a single leader solves while three ranks idle; with
// width 2/4 the cooperative backends (spike, splitsolve) split the task's
// SPIKE partitions across the group, so the same four ranks finish the
// same spectrum faster.  The non-cooperative backends record the cost of
// widening without cooperating.
//
// Each measurement sits next to the deterministic cost-model prediction
// (solvers::estimate_boundary_solve_seconds — the same numbers kAuto
// decides with).  Measured wall speedups are honest only when the host has
// >= 4 cores (the CommWorld ranks are threads); the JSON records the core
// count and scores the spatial win from the wall clock on capable hosts
// and from the model otherwise.
//
// Emits BENCH_solver.json.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "dft/hamiltonian.hpp"
#include "numeric/blas.hpp"
#include "omen/engine.hpp"
#include "solvers/solver.hpp"
#include "transport/transmission.hpp"

using namespace omenx;
using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

namespace {

dft::LeadBlocks bench_lead(idx s, unsigned seed) {
  dft::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  CMatrix h0 = numeric::random_cmatrix(s, s, seed);
  lead.h[0] = (h0 + numeric::dagger(h0)) * cplx{0.25};
  lead.h[1] = numeric::random_cmatrix(s, s, seed + 1) * cplx{0.4};
  lead.s[0] = CMatrix::identity(s);
  lead.s[1] = CMatrix(s, s);
  return lead;
}

struct Device {
  const char* label;
  idx s;
  idx cells;
};

}  // namespace

int main() {
  constexpr int kRanks = 4;
  constexpr int kPartitions = 4;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const Device devices[] = {{"small", 6, 16}, {"large", 16, 32}};
  const transport::SolverAlgorithm algos[] = {
      transport::SolverAlgorithm::kBlockLU, transport::SolverAlgorithm::kBcr,
      transport::SolverAlgorithm::kRgf, transport::SolverAlgorithm::kSpike,
      transport::SolverAlgorithm::kSplitSolve};

  // One accelerator per rank-node, as in the paper's hybrid machines: at
  // width 1 each energy group's slice holds a single device, so rank-level
  // cooperation is the only way to split a solve.
  parallel::DevicePool pool(kRanks);

  std::printf("host cores: %u (wall speedups honest only with >= %d)\n",
              cores, kRanks);

  std::string json = "{\n";
  bool beats_measured = true;
  bool beats_model = true;

  for (const Device& dev : devices) {
    std::vector<dft::LeadBlocks> leads{bench_lead(dev.s, 131)};
    omen::SweepRequest req;
    req.leads = &leads;
    req.cells = dev.cells;
    req.potential.assign(static_cast<std::size_t>(dev.cells), 0.0);
    req.point.obc = transport::ObcAlgorithm::kDecimation;
    req.point.partitions = kPartitions;
    req.point.want_density = false;
    req.point.want_current = false;
    // One energy point on four ranks: the momentum and energy levels are
    // exhausted; only the spatial level can use the remaining ranks.
    req.energies = {{0.25}};

    benchutil::header(std::string("solver x width matrix, ") + dev.label +
                      " device (s=" + std::to_string(dev.s) +
                      ", cells=" + std::to_string(dev.cells) + ", " +
                      std::to_string(kRanks) + " ranks, 1 energy point)");
    std::printf("%12s %7s %10s %10s %9s %9s\n", "solver", "width", "wall (s)",
                "busy (s)", "speedup", "model");

    for (const auto algo : algos) {
      req.point.solver = algo;
      const double model1 = solvers::estimate_boundary_solve_seconds(
          algo, dev.cells, dev.s, 2 * dev.s, kPartitions, /*executors=*/1);
      double wall1 = 0.0;
      for (const int width : {1, 2, 4}) {
        omen::EngineConfig cfg;
        cfg.num_ranks = kRanks;
        cfg.ranks_per_energy_group = width;
        omen::Engine engine(cfg, &pool);
        benchutil::consume(engine.run(req).stats.wall_seconds);  // warm-up
        const auto res = engine.run(req);
        const double busy =
            std::accumulate(res.stats.busy_seconds_per_rank.begin(),
                            res.stats.busy_seconds_per_rank.end(), 0.0);
        if (width == 1) wall1 = res.stats.wall_seconds;
        const double speedup = wall1 / res.stats.wall_seconds;
        const double model_speedup =
            model1 / solvers::estimate_boundary_solve_seconds(
                         algo, dev.cells, dev.s, 2 * dev.s, kPartitions,
                         width);
        const bool cooperative = solvers::algorithm_is_cooperative(algo);
        if (cooperative && width > 1 && dev.s == 16) {
          if (speedup <= 1.0) beats_measured = false;
          if (model_speedup <= 1.0) beats_model = false;
        }
        std::printf("%12s %7d %10.4f %10.4f %8.2fx %8.2fx\n",
                    solvers::algorithm_name(algo), width,
                    res.stats.wall_seconds, busy, speedup, model_speedup);

        benchutil::JsonWriter w("%.4f");
        w.field("width", static_cast<double>(width));
        w.field("ranks", static_cast<double>(kRanks));
        w.field("partitions", static_cast<double>(kPartitions));
        w.field("wall_s", res.stats.wall_seconds);
        w.field("busy_s", busy);
        w.field("speedup_vs_width1", speedup);
        w.field("model_speedup_vs_width1", model_speedup);
        w.field("cooperative", cooperative ? 1.0 : 0.0, true);
        json += std::string("  \"") + dev.label + "_" +
                solvers::algorithm_name(algo) + "_w" + std::to_string(width) +
                "\": {" + w.body + "},\n";
      }
    }
  }

  // On hosts with enough cores the wall clock itself must show the spatial
  // win; on smaller hosts (CI containers are often 1-2 cores) the threads
  // timeshare and only the model column is meaningful.
  const bool capable = cores >= static_cast<unsigned>(kRanks);
  const bool beats = capable ? beats_measured : beats_model;
  benchutil::rule();
  std::printf("spatial solve beats width-1 on the large device: %s (%s)\n",
              beats ? "yes" : "NO",
              capable ? "measured wall" : "cost model; host undersized");
  benchutil::JsonWriter w("%.4f");
  w.field("host_cores", static_cast<double>(cores));
  w.field("wall_speedups_honest", capable ? 1.0 : 0.0);
  w.field("spatial_beats_width1_large_measured", beats_measured ? 1.0 : 0.0);
  w.field("spatial_beats_width1_large_model", beats_model ? 1.0 : 0.0);
  w.field("spatial_beats_width1_large", beats ? 1.0 : 0.0, true);
  json += "  \"summary\": {" + w.body + "}\n}\n";

  std::FILE* f = std::fopen("BENCH_solver.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_solver.json\n");
  }
  return 0;
}
