// Fig. 3: sparsity of the UTBFET Hamiltonian in the contracted-Gaussian
// (CP2K) basis vs. a tight-binding basis.
//
// Paper statement: "the number of non-zero entries increases by two orders
// of magnitude in DFT as compared to tight-binding."  The bench assembles
// both Hamiltonians for the same UTB cell and reports nnz totals, per-row
// averages, and the DFT/TB ratio.
#include <cstdio>

#include "bench_util.hpp"
#include "blockmat/block_tridiag.hpp"
#include "dft/hamiltonian.hpp"
#include "lattice/structure.hpp"

using namespace omenx;
using numeric::idx;

namespace {

struct SparsityStats {
  idx dim = 0;
  idx nnz = 0;
  idx nbw = 0;
  double per_row() const { return static_cast<double>(nnz) / dim; }
};

SparsityStats stats_of(const dft::LeadBlocks& lead, double tol) {
  SparsityStats s;
  s.dim = lead.block_dim();
  s.nbw = lead.nbw();
  // Count the full row band: onsite + couplings both directions.
  for (std::size_t l = 0; l < lead.h.size(); ++l) {
    const idx n = blockmat::count_nnz(lead.h[l], tol);
    s.nnz += l == 0 ? n : 2 * n;
  }
  return s;
}

}  // namespace

int main() {
  benchutil::header("Fig. 3: DFT vs tight-binding sparsity (UTB cell)");
  benchutil::WallTimer timer;
  const auto utb = lattice::make_utb(1.0, 2);
  std::printf("structure: %s, %lld atoms/cell\n", utb.name.c_str(),
              static_cast<long long>(utb.atoms_per_cell()));

  const dft::BasisLibrary basis(dft::Functional::kLDA);
  dft::BuildOptions opt;
  opt.cutoff_nm = 1.05;
  const auto dftb = dft::build_lead_blocks(utb, basis, opt);
  const auto tb = dft::build_tb_lead_blocks(utb);

  const double tol = 1e-8;
  const auto sd = stats_of(dftb, tol);
  const auto st = stats_of(tb, tol);

  benchutil::rule();
  std::printf("%24s %12s %12s %10s %8s\n", "basis", "dim/cell", "nnz/cell",
              "nnz/row", "NBW");
  std::printf("%24s %12lld %12lld %10.1f %8lld\n", "Gaussian 3SP (CP2K-like)",
              static_cast<long long>(sd.dim), static_cast<long long>(sd.nnz),
              sd.per_row(), static_cast<long long>(sd.nbw));
  std::printf("%24s %12lld %12lld %10.1f %8lld\n", "sp3 tight-binding",
              static_cast<long long>(st.dim), static_cast<long long>(st.nnz),
              st.per_row(), static_cast<long long>(st.nbw));
  benchutil::rule();
  const double ratio = static_cast<double>(sd.nnz) / static_cast<double>(st.nnz);
  std::printf("DFT/TB non-zero ratio: %.1fx  (paper: ~100x, i.e. two orders "
              "of magnitude)\n",
              ratio);
  std::printf("elapsed: %.1f s\n", timer.seconds());
  return 0;
}
