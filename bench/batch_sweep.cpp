// Batched (k, E) pipeline bench and CI gate.
//
// The paper's two-phase SplitSolve pipeline keeps the boundary (OBC) stage
// of upcoming energy points running while the device phase of the current
// batch executes.  This bench measures that pipeline end to end through the
// distribution engine:
//   * throughput — the same hot-k sweep solved point by point (the rank
//     protocol with batch_tasks off: one (k, E) task at a time, exactly the
//     pre-batching leader loop) versus batched (same-shape tasks fused into
//     numeric::Backend calls behind an asynchronous OBC prefetch).  Gate:
//     batched >= 1.5x single-point throughput (expected >= 2x on any
//     multi-core host — the README quotes the 2x figure).  The pipeline's
//     concurrency comes from the process thread pool, so on a host with a
//     single hardware thread the lanes time-slice one core and a parallel
//     speedup gate is vacuous: there the gate degrades to "fusion costs
//     <= ~15% overhead" (speedup >= 0.85) and the JSON records the thread
//     count so the reader can tell which gate applied;
//   * determinism — batching must be invisible to the physics: bitwise
//     max|dT| == 0 against the unbatched reference at world sizes 1 / 2 / 4
//     and under work stealing (hot-k request on 4 ranks), and bit-identical
//     two-contact ballistic charge through the full simulator stack.
// BENCH_batch.json records the throughputs, batch shape statistics, and
// deltas; nonzero exit if any gate fails.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "numeric/blas.hpp"
#include "omen/engine.hpp"
#include "omen/simulator.hpp"
#include "parallel/thread_pool.hpp"
#include "transport/bands.hpp"

using namespace omenx;
using numeric::idx;

namespace {

dft::LeadBlocks synthetic_lead(idx s, unsigned seed) {
  dft::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  numeric::CMatrix h0 = numeric::random_cmatrix(s, s, seed);
  lead.h[0] = (h0 + numeric::dagger(h0)) * numeric::cplx{0.25};
  lead.h[1] = numeric::random_cmatrix(s, s, seed + 1) * numeric::cplx{0.4};
  lead.s[0] = numeric::CMatrix::identity(s);
  lead.s[1] = numeric::CMatrix(s, s);
  return lead;
}

/// One hot momentum carrying a long energy grid: every task shares the same
/// block structure, so the whole sweep fuses into full batches.
omen::SweepRequest throughput_request(const std::vector<dft::LeadBlocks>& leads,
                                      idx cells, int energies) {
  omen::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point.obc = transport::ObcAlgorithm::kDecimation;
  req.point.solver = transport::SolverAlgorithm::kBlockLU;
  req.point.want_density = false;
  req.point.want_current = false;
  req.energies.resize(leads.size());
  for (int ie = 0; ie < energies; ++ie)
    req.energies[0].push_back(-2.0 + 4.0 * ie / energies);
  return req;
}

/// Hot-k request on 4 momenta: k0 carries most of the grid so a 4-rank
/// world must steal, landing foreign tasks in thieves' batches.
omen::SweepRequest hot_k_request(const std::vector<dft::LeadBlocks>& leads,
                                 idx cells) {
  omen::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point.obc = transport::ObcAlgorithm::kDecimation;
  req.point.solver = transport::SolverAlgorithm::kBlockLU;
  req.point.want_density = false;
  req.point.want_current = false;
  req.energies.resize(leads.size());
  for (int ie = 0; ie < 32; ++ie)
    req.energies[0].push_back(-2.0 + 0.12 * ie);
  for (std::size_t k = 1; k < leads.size(); ++k)
    for (int ie = 0; ie < 4; ++ie)
      req.energies[k].push_back(-1.0 + 0.5 * ie);
  return req;
}

double max_abs_delta(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double out = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
    out = std::max(out, std::abs(a[i] - b[i]));
  return out;
}

/// Bitwise spectral distance over every k and observable (0 expected).
double sweep_delta(const omen::SweepResult& a, const omen::SweepResult& b) {
  double out = 0.0;
  for (std::size_t k = 0; k < a.caroli.size() && k < b.caroli.size(); ++k) {
    out = std::max(out, max_abs_delta(a.caroli[k], b.caroli[k]));
    out = std::max(out, max_abs_delta(a.transmission[k], b.transmission[k]));
  }
  return out;
}

/// Minimum wall time over `reps` runs of the sweep (after one warmup).
double timed_sweep(omen::Engine& engine, const omen::SweepRequest& req,
                   int reps, omen::SweepResult* last) {
  engine.run(req);  // warmup: thread pool spun up, allocators primed
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    benchutil::WallTimer timer;
    *last = engine.run(req);
    const double t = timer.seconds();
    if (r == 0 || t < best) best = t;
  }
  return best;
}

omen::SimulationConfig chain_config(bool batch, int ranks) {
  omen::SimulationConfig cfg;
  lattice::Structure chain;
  chain.cell_atoms = {{lattice::Species::kLi, {0.0, 0.0, 0.0}}};
  chain.cell_length = 0.5;
  chain.num_cells = 12;
  chain.name = "batch sweep chain";
  cfg.structure = chain;
  cfg.build.cutoff_nm = 1.0;
  cfg.point.obc = transport::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
  cfg.batch_tasks = batch;
  cfg.max_batch = 8;
  cfg.num_ranks = ranks;
  return cfg;
}

}  // namespace

int main() {
  benchutil::header(
      "Batched (k, E) pipeline: fused Backend calls + async OBC prefetch");

  // --- gate 1: batched vs single-point throughput ------------------------
  // Both engines run the rank protocol (flat_single_rank = false) with
  // caching off: the baseline is the honest pre-batching leader — one
  // solve_energy_point per pulled task, no fusion, no prefetch.
  const idx s = 16, cells = 24;
  const int n_energy = 64;
  std::vector<dft::LeadBlocks> tleads{synthetic_lead(s, 137)};
  const omen::SweepRequest treq = throughput_request(tleads, cells, n_energy);

  omen::EngineConfig scfg;
  scfg.flat_single_rank = false;  // force the rank protocol
  scfg.batch_tasks = false;
  scfg.cache_boundaries = false;
  omen::Engine single(scfg);
  omen::SweepResult single_res;
  const double t_single = timed_sweep(single, treq, 3, &single_res);

  omen::EngineConfig bcfg = scfg;
  bcfg.batch_tasks = true;
  bcfg.max_batch = 16;
  omen::Engine batched(bcfg);
  omen::SweepResult batched_res;
  const double t_batched = timed_sweep(batched, treq, 3, &batched_res);

  const double thr_single = n_energy / t_single;
  const double thr_batched = n_energy / t_batched;
  const double speedup = t_single / t_batched;
  const unsigned hw_threads = parallel::ThreadPool::global().num_threads();
  const double required_speedup = hw_threads >= 2 ? 1.5 : 0.85;
  const bool speed_gate = speedup >= required_speedup;
  const double max_dt_thr = sweep_delta(batched_res, single_res);
  const bool thr_dt_gate = max_dt_thr == 0.0;

  std::printf("%-28s %10s %14s %10s %12s\n", "configuration", "wall (s)",
              "tasks/s", "batches", "mean batch");
  benchutil::rule();
  std::printf("%-28s %10.3f %14.1f %10s %12s\n", "single-point leader",
              t_single, thr_single, "-", "-");
  std::printf("%-28s %10.3f %14.1f %10lld %12.1f\n", "batched pipeline",
              t_batched, thr_batched,
              static_cast<long long>(batched_res.stats.batches_issued),
              batched_res.stats.mean_batch_size);
  benchutil::rule();
  std::printf("speedup: %.2fx on %u pool threads (gate >= %.2fx: %s), "
              "max|dT| = %.3g (gate == 0: %s), prefetch %lld hit / %lld "
              "miss\n",
              speedup, hw_threads, required_speedup,
              speed_gate ? "yes" : "NO", max_dt_thr,
              thr_dt_gate ? "yes" : "NO",
              static_cast<long long>(batched_res.stats.prefetch_hits),
              static_cast<long long>(batched_res.stats.prefetch_misses));

  // --- gate 2: bitwise-identical spectra, worlds 1 / 2 / 4 + stealing ----
  const idx hs = 5, hcells = 10;
  std::vector<dft::LeadBlocks> hleads;
  for (unsigned k = 0; k < 4; ++k)
    hleads.push_back(synthetic_lead(hs, 211 + 3 * k));
  const omen::SweepRequest hreq = hot_k_request(hleads, hcells);

  omen::EngineConfig rcfg;
  rcfg.batch_tasks = false;
  rcfg.cache_boundaries = false;
  omen::Engine reference(rcfg);
  const auto ref = reference.run(hreq);

  bool world_gate = true;
  std::vector<double> world_dt;
  idx tasks_stolen = 0;
  for (const int ranks : {1, 2, 4}) {
    omen::EngineConfig wcfg;
    wcfg.num_ranks = ranks;
    wcfg.batch_tasks = true;
    wcfg.max_batch = 6;
    wcfg.cache_boundaries = false;
    omen::Engine engine(wcfg);
    const auto got = engine.run(hreq);
    const double d = sweep_delta(got, ref);
    world_dt.push_back(d);
    world_gate = world_gate && d == 0.0 && got.stats.batches_issued > 0;
    if (ranks == 4) tasks_stolen = got.stats.tasks_stolen;
    std::printf("world size %d: max|dT| vs unbatched = %.3g, "
                "%lld batches (mean %.1f)\n",
                ranks, d, static_cast<long long>(got.stats.batches_issued),
                got.stats.mean_batch_size);
  }
  const bool steal_gate = tasks_stolen > 0 && world_gate;
  std::printf("work stealing (4 ranks): %lld stolen tasks in foreign "
              "batches (gate > 0: %s)\n",
              static_cast<long long>(tasks_stolen),
              tasks_stolen > 0 ? "yes" : "NO");

  // --- gate 3: bit-identical charge through the simulator ----------------
  // The SCF observable: two-contact ballistic charge, batched worlds
  // 1 / 2 / 4 against the unbatched reference.
  omen::Simulator charge_ref(chain_config(false, 1));
  const auto win = transport::band_window(charge_ref.bands(9));
  std::vector<double> grid;
  for (double e = win.emin + 0.02; e < win.emax; e += 0.25)
    grid.push_back(e);
  const double mu = 0.5 * (win.emin + win.emax);
  const auto qref = charge_ref.charge_density(grid, mu, mu - 0.2, nullptr);

  bool charge_gate = true;
  std::vector<double> charge_dq;
  for (const int ranks : {1, 2, 4}) {
    omen::Simulator sim(chain_config(true, ranks));
    const auto q = sim.charge_density(grid, mu, mu - 0.2, nullptr);
    const double d = max_abs_delta(q, qref);
    charge_dq.push_back(d);
    charge_gate = charge_gate && q.size() == qref.size() && d == 0.0;
    std::printf("charge, world size %d: max|dq| vs unbatched = %.3g\n", ranks,
                d);
  }

  // --- JSON record -------------------------------------------------------
  std::string json = "{\n";
  {
    benchutil::JsonWriter w;
    w.field("tasks", static_cast<double>(n_energy));
    w.field("wall_single_s", t_single);
    w.field("wall_batched_s", t_batched);
    w.field("tasks_per_s_single", thr_single);
    w.field("tasks_per_s_batched", thr_batched);
    w.field("speedup", speedup);
    w.field("pool_threads", static_cast<double>(hw_threads));
    w.field("required_speedup", required_speedup);
    w.field("batches_issued",
            static_cast<double>(batched_res.stats.batches_issued));
    w.field("mean_batch_size", batched_res.stats.mean_batch_size);
    w.field("prefetch_hits",
            static_cast<double>(batched_res.stats.prefetch_hits));
    w.field("prefetch_misses",
            static_cast<double>(batched_res.stats.prefetch_misses), true);
    json += "  \"throughput\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("max_dt_throughput", max_dt_thr);
    w.field("max_dt_world_1", world_dt[0]);
    w.field("max_dt_world_2", world_dt[1]);
    w.field("max_dt_world_4", world_dt[2]);
    w.field("tasks_stolen", static_cast<double>(tasks_stolen));
    w.field("max_dq_world_1", charge_dq[0]);
    w.field("max_dq_world_2", charge_dq[1]);
    w.field("max_dq_world_4", charge_dq[2], true);
    json += "  \"determinism\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("speedup_gate", speed_gate ? 1.0 : 0.0);
    w.field("throughput_bit_identical", thr_dt_gate ? 1.0 : 0.0);
    w.field("world_sizes_bit_identical", world_gate ? 1.0 : 0.0);
    w.field("stealing_batched", steal_gate ? 1.0 : 0.0);
    w.field("charge_bit_identical", charge_gate ? 1.0 : 0.0, true);
    json += "  \"gates\": {" + w.body + "}\n}\n";
  }
  std::FILE* f = std::fopen("BENCH_batch.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_batch.json\n");
  }
  return speed_gate && thr_dt_gate && world_gate && steal_gate && charge_gate
             ? 0
             : 1;
}
