// Device-offload bench and CI gate.
//
// The "device" numeric::Backend replays the paper's K20X discipline on the
// emulated DevicePool: batched (k, E) buckets split round-robin across
// in-order device streams, operands staged through DeviceBuffer
// reservations with H2D/D2H accounting, and an operand residency cache so
// SCF-reused lead self-energies transfer once.  This bench gates that
// story end to end through the distribution engine:
//   * determinism — the device path must be invisible to the physics:
//     bitwise max|dT| == 0 against the host backend at pool sizes 1 / 2 / 4
//     and through the rank protocol (world size 2);
//   * residency — re-sweeping the identical (k, E) grid (the SCF outer
//     loop) must hit device residency for >= 90% of staged operands from
//     the second iteration, and per-iteration H2D bytes must drop after
//     warm-up and stay flat thereafter (only the system matrices, which
//     change with the potential, keep streaming);
//   * crossover — the perf::estimate_batch_seconds host-vs-device model
//     must agree with the measured wall-time ordering on >= 2 bucket
//     shapes.  Wall times within a ~15% band count as a tie (on a
//     single-hardware-thread host the lanes and the device worker
//     time-slice one core, so the ordering is decided by overhead noise);
//     the JSON records the thread count so the reader can tell.
// BENCH_device.json records everything; nonzero exit if any gate fails.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "numeric/blas.hpp"
#include "omen/engine.hpp"
#include "parallel/device.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/machine.hpp"

using namespace omenx;
using numeric::idx;

namespace {

dft::LeadBlocks synthetic_lead(idx s, unsigned seed) {
  dft::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  numeric::CMatrix h0 = numeric::random_cmatrix(s, s, seed);
  lead.h[0] = (h0 + numeric::dagger(h0)) * numeric::cplx{0.25};
  lead.h[1] = numeric::random_cmatrix(s, s, seed + 1) * numeric::cplx{0.4};
  lead.s[0] = numeric::CMatrix::identity(s);
  lead.s[1] = numeric::CMatrix(s, s);
  return lead;
}

/// One momentum point with a uniform energy grid; every task shares the
/// same block structure, so the sweep fuses into full device batches.
omen::SweepRequest sweep_request(const std::vector<dft::LeadBlocks>& leads,
                                 idx cells, int energies) {
  omen::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point.obc = transport::ObcAlgorithm::kDecimation;
  req.point.solver = transport::SolverAlgorithm::kBlockLU;
  req.point.want_density = false;
  req.point.want_current = false;
  req.energies.resize(leads.size());
  for (int ie = 0; ie < energies; ++ie)
    req.energies[0].push_back(-2.0 + 4.0 * ie / energies);
  return req;
}

double max_abs_delta(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double out = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
    out = std::max(out, std::abs(a[i] - b[i]));
  return out;
}

/// Bitwise spectral distance over every k and observable (0 expected).
double sweep_delta(const omen::SweepResult& a, const omen::SweepResult& b) {
  double out = 0.0;
  for (std::size_t k = 0; k < a.caroli.size() && k < b.caroli.size(); ++k) {
    out = std::max(out, max_abs_delta(a.caroli[k], b.caroli[k]));
    out = std::max(out, max_abs_delta(a.transmission[k], b.transmission[k]));
  }
  return out;
}

/// Minimum wall time over `reps` runs of the sweep (after one warmup).
double timed_sweep(omen::Engine& engine, const omen::SweepRequest& req,
                   int reps, omen::SweepResult* last) {
  engine.run(req);  // warmup: pool spun up, residency staged, OBCs cached
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    benchutil::WallTimer timer;
    *last = engine.run(req);
    const double t = timer.seconds();
    if (r == 0 || t < best) best = t;
  }
  return best;
}

}  // namespace

int main() {
  benchutil::header(
      "Device offload: batched (k, E) buckets on the emulated DevicePool");

  // --- gate 1: device spectra bitwise-identical to host ------------------
  const idx s = 16, cells = 24;
  const int n_energy = 32;
  std::vector<dft::LeadBlocks> leads{synthetic_lead(s, 137)};
  const omen::SweepRequest req = sweep_request(leads, cells, n_energy);

  omen::EngineConfig hcfg;
  hcfg.backend = "host";
  omen::Engine host_engine(hcfg);
  const auto host_res = host_engine.run(req);

  bool identity_gate = true;
  std::vector<double> pool_dt;
  double busy_total = 0.0;
  std::printf("%-28s %10s %14s %12s %12s\n", "configuration", "max|dT|",
              "dev batches", "H2D (KiB)", "D2H (KiB)");
  benchutil::rule();
  for (const int devices : {1, 2, 4}) {
    parallel::DevicePool pool(devices);
    omen::EngineConfig dcfg;
    dcfg.backend = "device";
    omen::Engine engine(dcfg, &pool);
    const auto got = engine.run(req);
    const double d = sweep_delta(got, host_res);
    pool_dt.push_back(d);
    identity_gate = identity_gate && d == 0.0 &&
                    got.stats.device_batches > 0 && got.stats.h2d_bytes > 0.0;
    if (devices == 4)
      for (const double b : got.stats.device_busy_seconds) busy_total += b;
    char label[32];
    std::snprintf(label, sizeof(label), "device pool %d", devices);
    std::printf("%-28s %10.3g %14lld %12.1f %12.1f\n", label, d,
                static_cast<long long>(got.stats.device_batches),
                got.stats.h2d_bytes / 1024.0, got.stats.d2h_bytes / 1024.0);
  }
  // The rank protocol: leaders drive their pool slice through the same
  // backend; spectra assemble deterministically by flat task index.
  double world_dt = 0.0;
  {
    parallel::DevicePool pool(2);
    omen::EngineConfig wcfg;
    wcfg.backend = "device";
    wcfg.num_ranks = 2;
    omen::Engine engine(wcfg, &pool);
    const auto got = engine.run(req);
    world_dt = sweep_delta(got, host_res);
    identity_gate = identity_gate && world_dt == 0.0;
    std::printf("%-28s %10.3g\n", "device, world size 2", world_dt);
  }
  benchutil::rule();
  std::printf("bitwise identity gate (max|dT| == 0 everywhere): %s\n",
              identity_gate ? "yes" : "NO");

  // --- gate 2: residency >= 90% from iteration 2, H2D drops --------------
  // The SCF outer loop re-sweeps the same grids; the engine's per-rank
  // ResidencyCache outlives run(), so staged operands (lead self-energies,
  // boundary RHS blocks) transfer once.
  parallel::DevicePool scf_pool(2);
  omen::EngineConfig scfg;
  scfg.backend = "device";
  omen::Engine scf_engine(scfg, &scf_pool);
  const int iterations = 3;
  std::vector<double> hit_rate(iterations), h2d_iter(iterations);
  std::vector<long long> hits(iterations), misses(iterations);
  for (int it = 0; it < iterations; ++it) {
    const auto r = scf_engine.run(req);
    hits[static_cast<std::size_t>(it)] = r.stats.residency_hits;
    misses[static_cast<std::size_t>(it)] = r.stats.residency_misses;
    const double staged =
        static_cast<double>(r.stats.residency_hits + r.stats.residency_misses);
    hit_rate[static_cast<std::size_t>(it)] =
        staged > 0.0 ? r.stats.residency_hits / staged : 0.0;
    h2d_iter[static_cast<std::size_t>(it)] = r.stats.h2d_bytes;
    std::printf("SCF iteration %d: residency %lld hit / %lld miss "
                "(rate %.1f%%), H2D %.1f KiB\n",
                it + 1, hits[static_cast<std::size_t>(it)],
                misses[static_cast<std::size_t>(it)],
                100.0 * hit_rate[static_cast<std::size_t>(it)],
                h2d_iter[static_cast<std::size_t>(it)] / 1024.0);
  }
  bool residency_gate = misses[0] > 0;
  for (int it = 1; it < iterations; ++it)
    residency_gate =
        residency_gate && hit_rate[static_cast<std::size_t>(it)] >= 0.90;
  const bool h2d_gate = h2d_iter[1] < h2d_iter[0] && h2d_iter[1] > 0.0 &&
                        h2d_iter[2] == h2d_iter[1];
  std::printf("residency gate (>= 90%% from iteration 2): %s; "
              "H2D drop-and-hold gate: %s\n",
              residency_gate ? "yes" : "NO", h2d_gate ? "yes" : "NO");

  // --- gate 3: crossover model vs measured ordering, 2 bucket shapes -----
  // One device stream against every host lane: on a multi-core host the
  // model puts these buckets on the lanes and the measured ordering must
  // agree; within the tie band the ordering is considered noise.
  const unsigned hw_threads = parallel::ThreadPool::global().num_threads();
  const perf::MachineSpec& spec = perf::MachineSpec::host();
  struct ShapeCase {
    const char* name;
    idx s, cells;
    int energies;
  };
  const ShapeCase cases[] = {{"nb=24 s=16 nrhs=16", 16, 24, 32},
                             {"nb=40 s=8 nrhs=8", 8, 40, 48}};
  bool crossover_gate = true;
  std::vector<double> cross_host_s, cross_dev_s, cross_model_host,
      cross_model_dev;
  std::printf("%-22s %12s %12s %12s %12s %8s\n", "bucket shape", "model host",
              "model dev", "meas host", "meas dev", "match");
  benchutil::rule();
  for (const auto& c : cases) {
    std::vector<dft::LeadBlocks> cl{synthetic_lead(c.s, 211)};
    const omen::SweepRequest creq = sweep_request(cl, c.cells, c.energies);

    omen::EngineConfig ch;
    ch.backend = "host";
    omen::Engine eh(ch);
    omen::SweepResult rh;
    const double t_host = timed_sweep(eh, creq, 3, &rh);

    parallel::DevicePool pool(1);
    omen::EngineConfig cd;
    cd.backend = "device";
    omen::Engine ed(cd, &pool);
    omen::SweepResult rd;
    const double t_dev = timed_sweep(ed, creq, 3, &rd);

    const perf::BatchShape shape{c.cells, c.s, c.s};
    const auto est = perf::estimate_batch_seconds(
        spec, shape, ch.max_batch, static_cast<int>(hw_threads), 1);
    const bool measured_dev_wins = t_dev < t_host;
    const double ratio = std::max(t_host, t_dev) / std::min(t_host, t_dev);
    const bool tie = ratio <= 1.15;
    const bool match = est.device_wins() == measured_dev_wins || tie;
    crossover_gate = crossover_gate && match && sweep_delta(rd, rh) == 0.0;
    cross_host_s.push_back(t_host);
    cross_dev_s.push_back(t_dev);
    cross_model_host.push_back(est.host_seconds);
    cross_model_dev.push_back(est.device_seconds);
    std::printf("%-22s %12.4g %12.4g %12.4g %12.4g %8s\n", c.name,
                est.host_seconds, est.device_seconds, t_host, t_dev,
                match ? (tie ? "tie" : "yes") : "NO");
  }
  benchutil::rule();
  std::printf("crossover gate on %u pool threads: %s\n", hw_threads,
              crossover_gate ? "yes" : "NO");

  // --- JSON record -------------------------------------------------------
  std::string json = "{\n";
  {
    benchutil::JsonWriter w;
    w.field("max_dt_pool_1", pool_dt[0]);
    w.field("max_dt_pool_2", pool_dt[1]);
    w.field("max_dt_pool_4", pool_dt[2]);
    w.field("max_dt_world_2", world_dt);
    w.field("device_busy_seconds_pool_4", busy_total, true);
    json += "  \"identity\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("hits_iter1", static_cast<double>(hits[0]));
    w.field("misses_iter1", static_cast<double>(misses[0]));
    w.field("hit_rate_iter2", hit_rate[1]);
    w.field("hit_rate_iter3", hit_rate[2]);
    w.field("h2d_bytes_iter1", h2d_iter[0]);
    w.field("h2d_bytes_iter2", h2d_iter[1]);
    w.field("h2d_bytes_iter3", h2d_iter[2], true);
    json += "  \"residency\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("pool_threads", static_cast<double>(hw_threads));
    for (std::size_t i = 0; i < cross_host_s.size(); ++i) {
      const std::string tag = "_shape_" + std::to_string(i + 1);
      w.field("model_host_s" + tag, cross_model_host[i]);
      w.field("model_device_s" + tag, cross_model_dev[i]);
      w.field("measured_host_s" + tag, cross_host_s[i]);
      w.field("measured_device_s" + tag, cross_dev_s[i],
              i + 1 == cross_host_s.size());
    }
    json += "  \"crossover\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("device_bit_identical", identity_gate ? 1.0 : 0.0);
    w.field("residency_hit_rate", residency_gate ? 1.0 : 0.0);
    w.field("h2d_drops_after_warmup", h2d_gate ? 1.0 : 0.0);
    w.field("crossover_matches_measured", crossover_gate ? 1.0 : 0.0, true);
    json += "  \"gates\": {" + w.body + "}\n}\n";
  }
  std::FILE* f = std::fopen("BENCH_device.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_device.json\n");
  }
  return identity_gate && residency_gate && h2d_gate && crossover_gate ? 0 : 1;
}
