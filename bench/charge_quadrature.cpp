// Charge-quadrature bench and CI gate: complex contour vs real-axis grid.
//
// The SCF loop's charge integral is the single largest solve sink.  On the
// real axis the integrand carries 1/sqrt van Hove edges, so a trapezoid
// grid needs *tens of thousands* of points graded to h = 1e-6 at the lead
// band edges before its own quadrature error drops near 1e-6; the contour
// backend replaces all of it with ~130 Green's-function nodes far off the
// real axis where G is smooth.  This bench runs the same equilibrium SCF
// (chain FET fixture, zero drain bias) once per backend and gates on:
//   * max |dV| < 1e-6 between the two converged potentials — the contour
//     must land on the *same* fixed point, not a cheaper nearby one,
//   * >= 5x fewer energy-point solves for the contour run (measured:
//     ~150x against the quadrature-converged baseline),
//   * boundary-cache hit rate >= 90% for the contour nodes from the second
//     SCF iteration onward (the quantized contour anchor keeps the node
//     set literally identical across iterations), and
//   * the end-to-end SCF wall-time speedup is reported (not gated — it
//     tracks the solve ratio minus constant engine overhead).
// The two runs intentionally use different OBC backends: wave-function
// charge needs a mode-based OBC (shift_invert), while the contour's
// Green's-function nodes need only self-energies, so the cheaper
// decimation OBC — also the more accurate one off the real axis — is the
// natural pairing.  BENCH_quadrature.json records counts, deltas, and
// gates; nonzero exit if any gate fails.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "charge/quadrature.hpp"
#include "obc/boundary_cache.hpp"
#include "omen/simulator.hpp"
#include "poisson/scf.hpp"
#include "transport/bands.hpp"

using namespace omenx;
using numeric::idx;

namespace {

constexpr idx kCells = 12;

omen::SimulationConfig chain_fet_config(transport::ObcAlgorithm obc) {
  omen::SimulationConfig cfg;
  lattice::Structure chain;
  chain.cell_atoms = {{lattice::Species::kLi, {0.0, 0.0, 0.0}}};
  chain.cell_length = 0.5;
  chain.num_cells = kCells;
  chain.name = "chain FET";
  cfg.structure = chain;
  cfg.build.cutoff_nm = 1.0;  // NBW = 2
  cfg.point.obc = obc;
  cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
  return cfg;
}

poisson::ScfOptions scf_options() {
  poisson::ScfOptions scf;
  // fig01d-style weak electrostatic coupling; tight tolerances so both
  // fixed points are resolved two orders below the 1e-6 parity gate.
  scf.poisson.screening_length_cells = 3.0;
  scf.poisson.charge_coupling = 0.02;
  scf.max_iter = 30;
  scf.tol = 1e-8;
  scf.charge_tol = 1e-7;
  scf.anderson_depth = 3;
  return scf;
}

/// Baseline grid: graded trapezoid resolving the 1/sqrt(E - Ec) van Hove
/// edges of the *lead* spectrum (the singular points of the wave-function
/// integrand; the smooth device potential only moves broad resonances).
std::vector<double> graded_grid(const transport::BandWindow& win, double mu) {
  const double edges[2] = {win.emin, win.emax};
  std::vector<double> grid;
  double e = win.emin - 0.45;
  const double e_end = mu + 0.8;
  while (e <= e_end) {
    grid.push_back(e);
    double d = 1e9;
    for (const double be : edges) d = std::min(d, std::abs(e - be));
    grid.back() = e;
    const double h = d < 2e-3 ? 1e-6 : (d < 0.05 ? 1e-5 : 2.5e-4);
    e += h;
  }
  return grid;
}

struct ScfRun {
  poisson::ScfResult result;
  idx solves = 0;          ///< energy-point solves across all iterations
  double wall_s = 0.0;
  int charge_evals = 0;
  /// Boundary-cache counters over iterations 2..N only.
  std::uint64_t late_hits = 0, late_misses = 0;
};

ScfRun run_scf(omen::Simulator& sim, const std::vector<double>& grid,
               double mu, charge::QuadratureAlgorithm quadrature) {
  const lattice::DeviceRegions regions{4, 4, 4};
  ScfRun out;
  obc::BoundaryCache::Stats after_first{};
  sim.reset_task_counter();
  benchutil::WallTimer timer;
  poisson::ChargeModel model = [&](const std::vector<double>& v) {
    auto rho = sim.charge_density(grid, mu, mu, &v, quadrature);
    if (++out.charge_evals == 1) after_first = sim.boundary_cache_stats();
    return rho;
  };
  // vgs < 0 raises a smooth barrier under the gate: no potential pockets
  // below the lead band bottom, so the baseline's graded grid keeps
  // resolving every spectral feature as the potential converges.
  out.result =
      poisson::self_consistent_potential(regions, -0.2, 0.0, model,
                                         scf_options());
  out.wall_s = timer.seconds();
  out.solves = sim.total_tasks_issued();
  const auto total = sim.boundary_cache_stats();
  out.late_hits = total.hits - after_first.hits;
  out.late_misses = total.misses - after_first.misses;
  return out;
}

double max_abs_delta(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double out = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
    out = std::max(out, std::abs(a[i] - b[i]));
  return out;
}

}  // namespace

int main() {
  benchutil::header("charge quadrature: complex contour vs real-axis grid");

  omen::Simulator probe(chain_fet_config(transport::ObcAlgorithm::kDecimation));
  const auto win = transport::band_window(probe.bands(9));
  const double mu = 0.5 * (win.emin + win.emax);
  const std::vector<double> grid = graded_grid(win, mu);
  std::printf("band [%.4f, %.4f] eV, mu = %.4f, baseline grid: %zu points\n\n",
              win.emin, win.emax, mu, grid.size());

  // Real-axis baseline: wave-function charge needs injection (mode OBC).
  omen::Simulator real_sim(
      chain_fet_config(transport::ObcAlgorithm::kShiftInvert));
  const ScfRun real = run_scf(real_sim, grid, mu,
                              charge::QuadratureAlgorithm::kRealGrid);

  // Contour: Green's-function nodes need self-energies only.
  omen::Simulator contour_sim(
      chain_fet_config(transport::ObcAlgorithm::kDecimation));
  const ScfRun contour = run_scf(contour_sim, grid, mu,
                                 charge::QuadratureAlgorithm::kContour);

  const double max_dv =
      max_abs_delta(real.result.potential, contour.result.potential);
  const double ratio = static_cast<double>(real.solves) /
                       static_cast<double>(std::max<idx>(1, contour.solves));
  const double hit_rate =
      contour.late_hits + contour.late_misses == 0
          ? 0.0
          : static_cast<double>(contour.late_hits) /
                static_cast<double>(contour.late_hits + contour.late_misses);
  const double speedup = real.wall_s / std::max(1e-9, contour.wall_s);

  std::printf("%-24s %10s %8s %12s %10s %10s\n", "backend", "solves", "iters",
              "converged", "wall (s)", "residual");
  benchutil::rule();
  std::printf("%-24s %10lld %8d %12s %10.3f %10.2e\n", "real_grid (graded)",
              static_cast<long long>(real.solves), real.result.iterations,
              real.result.converged ? "yes" : "NO", real.wall_s,
              real.result.residual);
  std::printf("%-24s %10lld %8d %12s %10.3f %10.2e\n", "contour (128 nodes)",
              static_cast<long long>(contour.solves),
              contour.result.iterations,
              contour.result.converged ? "yes" : "NO", contour.wall_s,
              contour.result.residual);
  benchutil::rule();

  const bool parity_gate = max_dv < 1e-6;
  const bool solve_gate = ratio >= 5.0;
  const bool cache_gate = hit_rate >= 0.9;
  const bool conv_gate = real.result.converged && contour.result.converged;
  std::printf("fixed-point parity: max|dV| = %.3g (gate < 1e-6: %s)\n", max_dv,
              parity_gate ? "yes" : "NO");
  std::printf("solve ratio: %.1fx (gate >= 5x: %s)\n", ratio,
              solve_gate ? "yes" : "NO");
  std::printf("contour cache hit rate from iteration 2: %.1f%% "
              "(gate >= 90%%: %s)\n",
              100.0 * hit_rate, cache_gate ? "yes" : "NO");
  std::printf("SCF wall-time speedup: %.1fx (reported, not gated)\n", speedup);

  std::string json = "{\n";
  {
    benchutil::JsonWriter w;
    w.field("solves", static_cast<double>(real.solves));
    w.field("iterations", real.result.iterations);
    w.field("converged", real.result.converged ? 1.0 : 0.0);
    w.field("wall_s", real.wall_s);
    w.field("grid_points", static_cast<double>(grid.size()), true);
    json += "  \"real_grid\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("solves", static_cast<double>(contour.solves));
    w.field("iterations", contour.result.iterations);
    w.field("converged", contour.result.converged ? 1.0 : 0.0);
    w.field("wall_s", contour.wall_s);
    w.field("cache_hit_rate_from_iter2", hit_rate, true);
    json += "  \"contour\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w("%.3e");
    w.field("max_dv", max_dv);
    w.field("solve_ratio", ratio);
    w.field("wall_speedup", speedup, true);
    json += "  \"comparison\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("fixed_point_parity_1e6", parity_gate ? 1.0 : 0.0);
    w.field("solve_ratio_ge_5x", solve_gate ? 1.0 : 0.0);
    w.field("cache_hit_rate_ge_90", cache_gate ? 1.0 : 0.0);
    w.field("both_converged", conv_gate ? 1.0 : 0.0, true);
    json += "  \"gates\": {" + w.body + "}\n}\n";
  }
  std::FILE* f = std::fopen("BENCH_quadrature.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_quadrature.json\n");
  }
  return parity_gate && solve_gate && cache_gate && conv_gate ? 0 : 1;
}
