// Fig. 1(e,f): lithiated SnO battery anode — volume expansion vs. capacity
// and the electronic current distribution through a lithiated sample.
//
// Paper workload: lithiated SnO at C = 1000 mAh/g, double-zeta basis, PBE.
// Scaled workload: the SnO toy structure of src/lattice with the PBE
// parameterization.  Behaviours to reproduce: (e) the measured-vs-simulated
// expansion curve shape (~+140% at 1000 mAh/g); (f) current flows through
// the Sn/O backbone while the contribution through the central Li-oxide
// region is insignificant.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "omen/simulator.hpp"
#include "transport/bands.hpp"

using namespace omenx;

int main() {
  benchutil::header("Fig. 1(e): SnO volume expansion vs capacity");
  std::printf("%14s %18s\n", "C (mAh/g)", "dV/V0");
  for (double c = 0.0; c <= 1000.0; c += 100.0)
    std::printf("%14.0f %18.3f\n", c, lattice::volume_expansion(c));
  std::printf("paper anchor: ~+1.4 at 1000 mAh/g -> here: %.2f\n",
              lattice::volume_expansion(1000.0));

  benchutil::header("Fig. 1(f): current through a lithiated SnO anode");
  benchutil::WallTimer timer;
  omen::SimulationConfig cfg;
  cfg.structure = lattice::make_sno_anode(12, 4, 1000.0);
  cfg.functional = dft::Functional::kPBE;
  cfg.build.cutoff_nm = 0.8;
  cfg.point.obc = transport::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
  omen::Simulator sim(cfg);

  const auto bs = sim.bands(9);
  const auto win = transport::band_window(bs);

  // Lithiate the middle cells through a potential well (the Li-oxide region
  // of the inset), then inspect where the current flows.  Scan upward from
  // the band bottom until a conducting state is found.
  std::vector<double> pot(12, 0.0);
  for (int i = 4; i < 8; ++i) pot[static_cast<std::size_t>(i)] = 1.2;
  double e_probe = win.emin;
  transport::EnergyPointResult res;
  for (int attempt = 0; attempt < 60; ++attempt) {
    e_probe = win.emin + 0.05 * attempt;
    res = sim.solve_point(e_probe, &pot);
    if (res.num_propagating > 0 && res.transmission > 0.05) break;
  }
  std::printf("probe energy %.3f eV: T = %.4f (Caroli %.4f), %lld channels\n",
              e_probe, res.transmission, res.transmission_caroli,
              static_cast<long long>(res.num_propagating));

  // Orbital density resolved by species: Li orbitals are the last orbital of
  // each cell (enumeration order); compare their carrier weight to Sn/O.
  const auto orb_atom = dft::orbital_to_atom(
      cfg.structure, dft::BasisLibrary(dft::Functional::kPBE));
  const auto per_atom = transport::density_per_atom(
      res.orbital_density, orb_atom, cfg.structure.atoms_per_cell(),
      res.orbital_density.empty() ? 0 : 12, 1);
  double li_density = 0.0, backbone_density = 0.0;
  const auto& atoms = cfg.structure.cell_atoms;
  for (std::size_t a = 0; a < per_atom.size(); ++a) {
    const auto species =
        atoms[a % atoms.size()].species;
    if (species == lattice::Species::kLi)
      li_density += per_atom[a];
    else
      backbone_density += per_atom[a];
  }
  benchutil::rule();
  std::printf("carrier weight on Sn/O backbone: %.4e\n", backbone_density);
  std::printf("carrier weight on Li sites:      %.4e (%.1f%% of backbone)\n",
              li_density, 100.0 * li_density / std::max(backbone_density, 1e-30));
  std::printf("paper: current through the central Li-oxide is "
              "insignificant\n");
  std::printf("elapsed: %.1f s\n", timer.seconds());
  return 0;
}
