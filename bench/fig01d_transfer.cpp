// Fig. 1(d): transfer characteristics Id-Vgs of a Si DG UTBFET.
//
// Paper workload: tbody = 5 nm, Ls = Ld = 20 nm, Lg = 10 nm, self-consistent
// Schroedinger-Poisson at Vds = 0.6 V.  Scaled workload: a 1-orbital
// transport chain (same solver stack, same SCF loop) with proportional
// source/gate/drain regions.  The behaviour to reproduce is the FET shape:
// exponential subthreshold current, then saturation once the barrier is
// pushed below the source Fermi level.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "omen/simulator.hpp"
#include "transport/bands.hpp"

using namespace omenx;

int main() {
  benchutil::header("Fig. 1(d): DG UTBFET transfer characteristics Id-Vgs");
  std::printf("paper: tbody=5 nm, Lg=10 nm, Vds=0.6 V | scaled chain device\n");

  omen::SimulationConfig cfg;
  lattice::Structure chain;
  chain.cell_atoms = {{lattice::Species::kLi, {0.0, 0.0, 0.0}}};
  chain.cell_length = 0.5;
  chain.num_cells = 24;
  chain.name = "scaled UTBFET channel";
  cfg.structure = chain;
  cfg.build.cutoff_nm = 1.0;  // NBW = 2
  cfg.point.obc = transport::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
  omen::Simulator sim(cfg);

  const auto bs = sim.bands(9);
  const auto win = transport::band_window(bs);
  // Source Fermi level just above the band bottom: the gate barrier then
  // modulates the thermionic window, as in an n-FET near threshold.
  const double mu_s = win.emin + 0.08;
  const double vds = 0.3;

  std::vector<double> grid;
  for (double e = win.emin - 0.02; e <= mu_s + 0.35; e += 0.02)
    grid.push_back(e);

  const lattice::DeviceRegions regions{8, 8, 8};
  poisson::ScfOptions scf;
  scf.poisson.screening_length_cells = 2.0;
  scf.poisson.charge_coupling = 0.02;
  scf.max_iter = 12;
  scf.tol = 2e-3;
  scf.mixing = 0.5;

  benchutil::WallTimer timer;
  // The gate "off" state raises the channel barrier: sweep Vgs upward.
  // Potential convention: barrier height = V_channel - mu offset; we sweep
  // the gate from depleting (negative) to accumulating (positive).
  std::vector<double> vgs;
  for (double v = -0.45; v <= 0.31; v += 0.15) vgs.push_back(v);

  // Shift all potentials so Vgs = 0 leaves a barrier of ~0.25 eV: emulate
  // the workfunction offset through the regions' gate target.
  std::vector<omen::Simulator::IvPoint> iv;
  for (const double v : vgs) {
    // Workfunction offset: at Vgs = 0 the channel barrier sits ~0.25 eV
    // above the source Fermi level (subthreshold).
    auto pts = sim.transfer_characteristics({v - 0.25}, vds, regions, grid,
                                            mu_s, scf);
    iv.push_back({v, pts[0].current, pts[0].scf_iterations, pts[0].converged});
  }

  benchutil::rule();
  std::printf("%10s %16s %12s %10s\n", "Vgs (V)", "Id (2e/h*eV)", "SCF iters",
              "conv");
  double prev = 0.0;
  bool monotone = true;
  for (const auto& p : iv) {
    std::printf("%10.2f %16.6e %12d %10s\n", p.vgs, p.current,
                p.scf_iterations, p.converged ? "yes" : "no");
    if (p.current < prev - 1e-12) monotone = false;
    prev = p.current;
  }
  benchutil::rule();
  const double on_off = iv.back().current / std::max(iv.front().current, 1e-30);
  std::printf("on/off ratio over the sweep: %.1e (monotone: %s)\n", on_off,
              monotone ? "yes" : "no");
  std::printf("paper shape: exponential subthreshold slope, saturation at "
              "high Vgs\n");
  std::printf("elapsed: %.1f s\n", timer.seconds());
  return 0;
}
