// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace benchutil {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Keep the optimizer from discarding a benchmark result.
template <typename T>
inline void consume(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() {
  std::printf("------------------------------------------------------------\n");
}

}  // namespace benchutil
