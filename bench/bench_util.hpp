// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace benchutil {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Keep the optimizer from discarding a benchmark result.
template <typename T>
inline void consume(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() {
  std::printf("------------------------------------------------------------\n");
}

/// Flat-JSON body builder shared by the BENCH_*.json emitters.  `fmt` is
/// the printf conversion applied to every value.
struct JsonWriter {
  explicit JsonWriter(const char* fmt = "%.6g") : fmt_(fmt) {}
  std::string body;
  void field(const std::string& k, double v, bool last = false) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), fmt_, v);
    body += "\"" + k + "\": " + buf + (last ? "" : ", ");
  }

 private:
  const char* fmt_;
};

}  // namespace benchutil
