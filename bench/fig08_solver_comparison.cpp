// Fig. 8: time-to-solution comparison of the three OBC+solver combinations
// at one energy point:
//   (1) shift-and-invert + MUMPS      (tight-binding-era algorithms)
//   (2) FEAST + MUMPS                 (new OBCs, old solver)
//   (3) FEAST + SplitSolve            (this paper)
//
// Part 1 measures real wall times on a scaled Si nanowire (the code paths
// are identical to production, only the dimensions differ).  Part 2 prints
// the calibrated Titan-scale model for both paper structures:
// UTBFET 23040 atoms (4 nodes) and NWFET 55488 atoms (16 nodes).
#include <cstdio>

#include "bench_util.hpp"
#include "dft/hamiltonian.hpp"
#include "lattice/structure.hpp"
#include "parallel/device.hpp"
#include "perf/scaling.hpp"
#include "transport/transmission.hpp"

using namespace omenx;
using numeric::idx;

int main() {
  benchutil::header("Fig. 8 measured (scaled Si nanowire, one energy point)");
  const auto wire = lattice::make_nanowire(0.6, 16);
  const dft::BasisLibrary basis;
  const auto lead = dft::build_lead_blocks(wire, basis);
  const auto folded = dft::fold_lead(lead);
  const std::vector<double> pot(16, 0.0);
  const auto dm = dft::assemble_device(lead, 16, pot);
  const double energy = -9.0;
  parallel::DevicePool pool(4);

  struct Combo {
    const char* name;
    transport::ObcAlgorithm obc;
    transport::SolverAlgorithm solver;
  };
  const Combo combos[] = {
      {"shift-invert + direct LU", transport::ObcAlgorithm::kShiftInvert,
       transport::SolverAlgorithm::kBlockLU},
      {"FEAST + direct LU", transport::ObcAlgorithm::kFeast,
       transport::SolverAlgorithm::kBlockLU},
      {"FEAST + SplitSolve", transport::ObcAlgorithm::kFeast,
       transport::SolverAlgorithm::kSplitSolve},
  };

  double t_first = 0.0, t_last = 0.0, t_ref = 0.0;
  std::printf("%28s %12s %12s %14s\n", "algorithm", "time (s)", "T(E)",
              "speedup vs 1");
  for (const auto& c : combos) {
    transport::EnergyPointOptions opt;
    opt.obc = c.obc;
    opt.solver = c.solver;
    opt.partitions = c.solver == transport::SolverAlgorithm::kSplitSolve ? 4 : 1;
    opt.obc_opts.feast.annulus_r = 30.0;
    benchutil::WallTimer timer;
    const auto res =
        transport::solve_energy_point(dm, lead, folded, energy, opt, &pool);
    const double t = timer.seconds();
    if (t_first == 0.0) t_first = t;
    t_last = t;
    if (c.obc == transport::ObcAlgorithm::kFeast &&
        c.solver == transport::SolverAlgorithm::kBlockLU)
      t_ref = t;
    std::printf("%28s %12.3f %12.4f %14.1f\n", c.name, t, res.transmission,
                t_first / t);
  }
  benchutil::rule();
  std::printf("measured total speedup (SI+LU -> FEAST+SplitSolve): %.1fx\n",
              t_first / t_last);
  if (t_ref > 0.0)
    std::printf("measured solver-only speedup (LU -> SplitSolve):   %.1fx\n",
                t_ref / t_last);

  // ---------------------------------------------------------------- model --
  perf::SolverComparisonModel model;
  struct Case {
    const char* name;
    idx nb, s, degree;
    int nodes;
    const char* paper;
  };
  const Case cases[] = {
      {"(a) UTBFET 23040 atoms, NSS=276480", 72, 3840, 4, 4,
       "paper: >50x total, SplitSolve 6-16x vs MUMPS, ~90 s/E"},
      {"(b) NWFET 55488 atoms, NSS=665856", 96, 6936, 4, 16,
       "paper: >50x total, 102 s/E with FEAST+SplitSolve"},
  };
  for (const auto& cs : cases) {
    benchutil::header(std::string("Fig. 8 model, Titan: ") + cs.name);
    const auto si = model.shift_invert_mumps(cs.nb, cs.s, cs.degree, cs.nodes);
    const auto fm = model.feast_mumps(cs.nb, cs.s, cs.degree, cs.nodes);
    const auto fs = model.feast_splitsolve(cs.nb, cs.s, cs.degree, cs.nodes);
    std::printf("%28s %12s %12s %12s\n", "algorithm", "OBC (s)", "solve (s)",
                "total (s)");
    std::printf("%28s %12.0f %12.0f %12.0f\n", "shift-invert + MUMPS",
                si.obc_s, si.solve_s, si.total());
    std::printf("%28s %12.0f %12.0f %12.0f\n", "FEAST + MUMPS", fm.obc_s,
                fm.solve_s, fm.total());
    std::printf("%28s %12.0f %12.0f %12.0f\n", "FEAST + SplitSolve", fs.obc_s,
                fs.solve_s, fs.total());
    benchutil::rule();
    std::printf("total speedup: %.0fx | solver speedup: %.1fx\n",
                si.total() / fs.total(), fm.solve_s / fs.solve_s);
    std::printf("%s\n", cs.paper);
  }
  return 0;
}
