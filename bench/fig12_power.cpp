// Fig. 12: (a) machine- and GPU-level power profile of the 15 PFlop/s run;
// (b) GPU activity timeline during one energy point.
//
// Part (a) prints the calibrated power model.  Part (b) runs a real
// SplitSolve energy point on the emulated accelerators and prints the
// recorded trace events — the equivalent of the paper's nvprof capture —
// plus the per-device busy fraction over the traced window (the occupancy
// number behind the paper's "GPUs active ~87% of an energy point" claim).
// BENCH_power.json records the power model and the measured occupancy.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "blockmat/block_tridiag.hpp"
#include "numeric/blas.hpp"
#include "parallel/device.hpp"
#include "parallel/tracer.hpp"
#include "perf/power.hpp"
#include "solvers/splitsolve.hpp"

using namespace omenx;
using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

int main() {
  benchutil::header("Fig. 12(a): power profile of the 15 PFlop/s run (model)");
  const auto profile = perf::model_power_profile();
  std::printf("machine: avg %.2f MW, peak %.2f MW   (paper: 7.6 / 8.8 MW)\n",
              profile.avg_machine_mw, profile.peak_machine_mw);
  std::printf("per GPU: avg %.1f W                 (paper: 146 W)\n",
              profile.avg_gpu_watts);
  std::printf("efficiency: %.0f MFLOPS/W machine, %.0f MFLOPS/W GPU\n",
              profile.machine_mflops_per_watt, profile.gpu_mflops_per_watt);
  std::printf("            (paper: 1975 / 5396 MFLOPS/W)\n");
  benchutil::rule();
  std::printf("power trace (downsampled, one energy-point period):\n");
  const double period = 912.5 / 13.0;
  for (const auto& s : profile.samples) {
    if (s.time_s > period) break;
    if (static_cast<int>(s.time_s) % 5 != 0) continue;
    const int bars = static_cast<int>((s.machine_mw - 6.0) * 12.0);
    std::printf("  t=%5.0fs %6.2f MW %8.0f W/GPU %-10s |", s.time_s,
                s.machine_mw, s.gpu_watts, s.phase.c_str());
    for (int b = 0; b < std::max(0, bars); ++b) std::printf("#");
    std::printf("\n");
  }

  benchutil::header("Fig. 12(b): GPU activity, real emulated-device trace");
  parallel::Tracer::global().clear();
  const idx nb = 16, s = 64;
  blockmat::BlockTridiag a(nb, s);
  for (idx i = 0; i < nb; ++i) {
    a.diag(i) = numeric::random_cmatrix(s, s, 7 + (unsigned)i);
    for (idx d = 0; d < s; ++d) a.diag(i)(d, d) += cplx{8.0};
    if (i + 1 < nb) {
      a.upper(i) = numeric::random_cmatrix(s, s, 107 + (unsigned)i);
      a.lower(i) = numeric::random_cmatrix(s, s, 207 + (unsigned)i);
    }
  }
  parallel::DevicePool pool(4);
  solvers::SplitSolve ss(a, pool, {.partitions = 4});
  const CMatrix sl = numeric::random_cmatrix(s, s, 301) * cplx{0.2};
  const CMatrix sr = numeric::random_cmatrix(s, s, 302) * cplx{0.2};
  ss.solve(sl, sr, numeric::random_cmatrix(s, 8, 303), CMatrix(s, 8));

  auto events = parallel::Tracer::global().events();
  std::sort(events.begin(), events.end(),
            [](const auto& x, const auto& y) { return x.start_s < y.start_s; });
  std::printf("%10s %8s %12s %12s\n", "phase", "device", "start (ms)",
              "dur (ms)");
  for (const auto& e : events)
    std::printf("%10s %8d %12.2f %12.2f\n", e.name.c_str(), e.device_id,
                1e3 * e.start_s, 1e3 * (e.end_s - e.start_s));
  benchutil::rule();
  std::printf("phases P1-P4 run concurrently on all devices; the spike merge "
              "and SMW postprocess follow, as in the paper's nvprof trace\n");

  // Per-device busy fraction over the traced window: the integral of each
  // device's recorded kernel time divided by the wall span of the whole
  // trace.  The paper's Fig. 12(b) point is that all GPUs stay busy
  // through P1-P4 and idle only during the host-side merge.
  const int n_devices = static_cast<int>(pool.size());
  std::vector<double> busy(static_cast<std::size_t>(n_devices), 0.0);
  double t0 = 1e300, t1 = -1e300;
  for (const auto& e : events) {
    t0 = std::min(t0, e.start_s);
    t1 = std::max(t1, e.end_s);
    if (e.device_id >= 0 && e.device_id < n_devices)
      busy[static_cast<std::size_t>(e.device_id)] += e.end_s - e.start_s;
  }
  const double window = events.empty() ? 0.0 : t1 - t0;
  double busy_sum = 0.0;
  std::printf("per-device busy fraction over the %.2f ms trace window:\n",
              1e3 * window);
  for (int d = 0; d < n_devices; ++d) {
    const double frac =
        window > 0.0 ? busy[static_cast<std::size_t>(d)] / window : 0.0;
    busy_sum += frac;
    std::printf("  device %d: %5.1f%%\n", d, 100.0 * frac);
  }
  const double mean_busy = n_devices > 0 ? busy_sum / n_devices : 0.0;
  std::printf("mean device occupancy: %.1f%%\n", 100.0 * mean_busy);

  // --- JSON record -------------------------------------------------------
  std::string json = "{\n";
  {
    benchutil::JsonWriter w;
    w.field("avg_machine_mw", profile.avg_machine_mw);
    w.field("peak_machine_mw", profile.peak_machine_mw);
    w.field("avg_gpu_watts", profile.avg_gpu_watts);
    w.field("machine_mflops_per_watt", profile.machine_mflops_per_watt);
    w.field("gpu_mflops_per_watt", profile.gpu_mflops_per_watt, true);
    json += "  \"power_model\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("devices", static_cast<double>(n_devices));
    w.field("trace_window_s", window);
    w.field("trace_events", static_cast<double>(events.size()));
    for (int d = 0; d < n_devices; ++d)
      w.field("busy_fraction_device_" + std::to_string(d),
              window > 0.0 ? busy[static_cast<std::size_t>(d)] / window : 0.0);
    w.field("mean_busy_fraction", mean_busy, true);
    json += "  \"occupancy\": {" + w.body + "}\n}\n";
  }
  std::FILE* f = std::fopen("BENCH_power.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_power.json\n");
  }
  // Gate: a real multi-device trace was captured and every device did work.
  bool all_active = n_devices > 0 && window > 0.0;
  for (int d = 0; d < n_devices; ++d)
    all_active = all_active && busy[static_cast<std::size_t>(d)] > 0.0;
  return all_active ? 0 : 1;
}
