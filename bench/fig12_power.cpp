// Fig. 12: (a) machine- and GPU-level power profile of the 15 PFlop/s run;
// (b) GPU activity timeline during one energy point.
//
// Part (a) prints the calibrated power model.  Part (b) runs a real
// SplitSolve energy point on the emulated accelerators and prints the
// recorded trace events — the equivalent of the paper's nvprof capture.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "blockmat/block_tridiag.hpp"
#include "numeric/blas.hpp"
#include "parallel/device.hpp"
#include "parallel/tracer.hpp"
#include "perf/power.hpp"
#include "solvers/splitsolve.hpp"

using namespace omenx;
using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

int main() {
  benchutil::header("Fig. 12(a): power profile of the 15 PFlop/s run (model)");
  const auto profile = perf::model_power_profile();
  std::printf("machine: avg %.2f MW, peak %.2f MW   (paper: 7.6 / 8.8 MW)\n",
              profile.avg_machine_mw, profile.peak_machine_mw);
  std::printf("per GPU: avg %.1f W                 (paper: 146 W)\n",
              profile.avg_gpu_watts);
  std::printf("efficiency: %.0f MFLOPS/W machine, %.0f MFLOPS/W GPU\n",
              profile.machine_mflops_per_watt, profile.gpu_mflops_per_watt);
  std::printf("            (paper: 1975 / 5396 MFLOPS/W)\n");
  benchutil::rule();
  std::printf("power trace (downsampled, one energy-point period):\n");
  const double period = 912.5 / 13.0;
  for (const auto& s : profile.samples) {
    if (s.time_s > period) break;
    if (static_cast<int>(s.time_s) % 5 != 0) continue;
    const int bars = static_cast<int>((s.machine_mw - 6.0) * 12.0);
    std::printf("  t=%5.0fs %6.2f MW %8.0f W/GPU %-10s |", s.time_s,
                s.machine_mw, s.gpu_watts, s.phase.c_str());
    for (int b = 0; b < std::max(0, bars); ++b) std::printf("#");
    std::printf("\n");
  }

  benchutil::header("Fig. 12(b): GPU activity, real emulated-device trace");
  parallel::Tracer::global().clear();
  const idx nb = 16, s = 64;
  blockmat::BlockTridiag a(nb, s);
  for (idx i = 0; i < nb; ++i) {
    a.diag(i) = numeric::random_cmatrix(s, s, 7 + (unsigned)i);
    for (idx d = 0; d < s; ++d) a.diag(i)(d, d) += cplx{8.0};
    if (i + 1 < nb) {
      a.upper(i) = numeric::random_cmatrix(s, s, 107 + (unsigned)i);
      a.lower(i) = numeric::random_cmatrix(s, s, 207 + (unsigned)i);
    }
  }
  parallel::DevicePool pool(4);
  solvers::SplitSolve ss(a, pool, {.partitions = 4});
  const CMatrix sl = numeric::random_cmatrix(s, s, 301) * cplx{0.2};
  const CMatrix sr = numeric::random_cmatrix(s, s, 302) * cplx{0.2};
  ss.solve(sl, sr, numeric::random_cmatrix(s, 8, 303), CMatrix(s, 8));

  auto events = parallel::Tracer::global().events();
  std::sort(events.begin(), events.end(),
            [](const auto& x, const auto& y) { return x.start_s < y.start_s; });
  std::printf("%10s %8s %12s %12s\n", "phase", "device", "start (ms)",
              "dur (ms)");
  for (const auto& e : events)
    std::printf("%10s %8d %12.2f %12.2f\n", e.name.c_str(), e.device_id,
                1e3 * e.start_s, 1e3 * (e.end_s - e.start_s));
  benchutil::rule();
  std::printf("phases P1-P4 run concurrently on all devices; the spike merge "
              "and SMW postprocess follow, as in the paper's nvprof trace\n");
  return 0;
}
