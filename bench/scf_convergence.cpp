// SCF convergence bench: the Fig. 2 Schroedinger-Poisson loop on the
// chain-FET transfer-characteristics fixture (tests/omen), comparing the
// seed's cold-started linear fixed-point iteration against the accelerated
// subsystem along its three axes:
//   * mixing:     linear (anderson_depth = 0) vs Anderson(3),
//   * start:      Laplace cold start vs warm start from the previous Vgs,
//   * energy grid: fixed fine grid vs per-iteration adaptive refinement.
// Every configuration must land on the same converged potential (max |dV|
// against the seed loop is recorded); what changes is how many SCF
// iterations — i.e. how many full (k, E) charge sweeps — it takes to get
// there.  BENCH_scf.json records iterations-to-tol and wall time per
// configuration plus the headline ratio the acceptance gate reads
// (anderson+warm must reach the fixed points in <= half the seed's total
// iterations).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "omen/simulator.hpp"
#include "transport/bands.hpp"

using namespace omenx;

namespace {

struct RunResult {
  std::string name;
  int total_iterations = 0;
  double wall_s = 0.0;
  bool all_converged = true;
  double max_dv_vs_seed = 0.0;  ///< converged-potential agreement
  std::vector<omen::Simulator::IvPoint> points;
};

}  // namespace

int main() {
  benchutil::header("SCF convergence: linear/Anderson x cold/warm x grid");

  omen::SimulationConfig cfg;
  lattice::Structure chain;
  chain.cell_atoms = {{lattice::Species::kLi, {0.0, 0.0, 0.0}}};
  chain.cell_length = 0.5;
  chain.num_cells = 16;
  chain.name = "chain FET";
  cfg.structure = chain;
  cfg.build.cutoff_nm = 1.0;  // NBW = 2
  cfg.point.obc = transport::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
  omen::Simulator sim(cfg);

  const auto win = transport::band_window(sim.bands(9));
  const double mu_s = win.emin + 0.1;
  const double vds = 0.2;
  const lattice::DeviceRegions regions{5, 6, 5};
  const std::vector<double> vgs{-0.15, -0.05, 0.05, 0.15};

  // Fixed fine grid (the seed's configuration) and the coarse base the
  // adaptive configuration refines per outer iteration.
  std::vector<double> fine, coarse;
  for (double e = win.emin - 0.02; e <= mu_s + 0.3; e += 0.01)
    fine.push_back(e);
  for (double e = win.emin - 0.02; e <= mu_s + 0.3; e += 0.05)
    coarse.push_back(e);

  poisson::ScfOptions seed_loop;  // the seed: cold linear, fixed grid
  seed_loop.poisson.screening_length_cells = 2.0;
  seed_loop.poisson.charge_coupling = 0.25;
  seed_loop.tol = 1e-8;
  seed_loop.charge_tol = 0.0;
  seed_loop.mixing = 0.3;
  seed_loop.max_iter = 200;
  seed_loop.anderson_depth = 0;
  seed_loop.warm_start = false;

  const auto run = [&](const std::string& name, int depth, bool warm,
                       bool adaptive) {
    poisson::ScfOptions o = seed_loop;
    o.anderson_depth = depth;
    o.warm_start = warm;
    o.adaptive_energy_grid = adaptive;
    o.grid_refine_tol = 0.25;
    o.grid_min_spacing = 2e-3;
    benchutil::WallTimer timer;
    RunResult r;
    r.name = name;
    r.points = sim.transfer_characteristics(vgs, vds, regions,
                                            adaptive ? coarse : fine, mu_s, o);
    r.wall_s = timer.seconds();
    for (const auto& p : r.points) {
      r.total_iterations += p.scf_iterations;
      r.all_converged = r.all_converged && p.converged;
    }
    return r;
  };

  std::vector<RunResult> runs;
  runs.push_back(run("linear_cold_fixed", 0, false, false));
  runs.push_back(run("linear_warm_fixed", 0, true, false));
  runs.push_back(run("anderson_cold_fixed", 3, false, false));
  runs.push_back(run("anderson_warm_fixed", 3, true, false));
  runs.push_back(run("anderson_warm_adaptive", 3, true, true));

  // Fixed-point agreement: every configuration against the seed loop.
  const auto& seed = runs.front();
  for (auto& r : runs) {
    for (std::size_t b = 0; b < vgs.size(); ++b) {
      const auto& vp = r.points[b].potential;
      const auto& vs = seed.points[b].potential;
      for (std::size_t c = 0; c < vp.size() && c < vs.size(); ++c)
        r.max_dv_vs_seed =
            std::max(r.max_dv_vs_seed, std::abs(vp[c] - vs[c]));
    }
  }

  std::printf("%-24s %10s %10s %6s %12s\n", "configuration", "iters",
              "wall (s)", "conv", "max|dV|seed");
  benchutil::rule();
  for (const auto& r : runs)
    std::printf("%-24s %10d %10.3f %6s %12.2e\n", r.name.c_str(),
                r.total_iterations, r.wall_s, r.all_converged ? "yes" : "NO",
                r.max_dv_vs_seed);
  benchutil::rule();

  const auto& headline = runs[3];  // anderson_warm_fixed
  const double ratio = static_cast<double>(seed.total_iterations) /
                       std::max(1, headline.total_iterations);
  const bool le_half = 2 * headline.total_iterations <= seed.total_iterations;
  // "Same converged potential" is part of the gate: the accelerated loop
  // must land on the seed's fixed points to well within the production
  // tolerance (1e-6 eV), not merely converge somewhere fast.
  const bool same_fixed_point = headline.max_dv_vs_seed < 1e-6;
  std::printf("anderson+warm vs seed linear: %d vs %d iterations (%.2fx, "
              "<= half: %s, same fixed points: %s)\n",
              headline.total_iterations, seed.total_iterations, ratio,
              le_half ? "yes" : "NO", same_fixed_point ? "yes" : "NO");

  std::string json = "{\n";
  for (const auto& r : runs) {
    benchutil::JsonWriter w;
    w.field("total_iterations", static_cast<double>(r.total_iterations));
    w.field("wall_s", r.wall_s);
    w.field("all_converged", r.all_converged ? 1.0 : 0.0);
    w.field("max_dv_vs_seed", r.max_dv_vs_seed, true);
    json += "  \"" + r.name + "\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("iteration_speedup", ratio);
    w.field("le_half_of_seed", le_half ? 1.0 : 0.0);
    w.field("same_fixed_point", same_fixed_point ? 1.0 : 0.0, true);
    json += "  \"headline_anderson_warm\": {" + w.body + "}\n}\n";
  }
  std::FILE* f = std::fopen("BENCH_scf.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_scf.json\n");
  }
  return le_half && headline.all_converged && same_fixed_point ? 0 : 1;
}
