// Dissipative-transport bench and CI gate (BENCH_scattering.json).
//
// Four gates guard the scattering::SelfEnergy layer:
//   * ballistic parity — buttiker_probe at eta = 0 attaches nothing, and
//     the pipeline must reproduce the kNone run *bitwise* (max |dT| and
//     max |drho| exactly 0, not a tolerance): the provider list degrades
//     to the contacts alone and routes through the pre-refactor code path,
//     caching included;
//   * probe-current leak — with eta > 0 the inner Newton loop tunes every
//     probe's chemical potential to zero net current: the relative leak
//     max_p |I_p| / max_q |I_q| must be <= 1e-10, and the two real
//     terminals must balance to the same precision;
//   * monotonic dephasing — the two-terminal current must be
//     non-increasing over an eta ramp {0, 0.02, 0.1, 0.3}: probes only
//     ever redistribute current, never amplify it;
//   * world-size bit-identity — the dissipative sweep (probe contacts on
//     the multi-terminal wire protocol) must be bit-identical across
//     engine world sizes {1, 2, 4} with work stealing enabled.
// Nonzero exit if any gate fails.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "omen/simulator.hpp"
#include "scattering/self_energy.hpp"
#include "transport/bands.hpp"
#include "transport/contacts.hpp"
#include "transport/transmission.hpp"

using namespace omenx;
using numeric::idx;

namespace {

lattice::Structure chain_structure(idx cells, double cell_length = 0.5) {
  lattice::Structure chain;
  chain.cell_atoms = {{lattice::Species::kLi, {0.0, 0.0, 0.0}}};
  chain.cell_length = cell_length;
  chain.num_cells = cells;
  chain.name = "scattering bench chain";
  return chain;
}

omen::SimulationConfig base_config(idx cells) {
  omen::SimulationConfig cfg;
  cfg.structure = chain_structure(cells);
  cfg.build.cutoff_nm = 1.0;  // NBW = 2: folded supercells
  cfg.point.obc = transport::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
  return cfg;
}

scattering::Spec buttiker(double eta, std::vector<idx> blocks = {}) {
  scattering::Spec spec;
  spec.algorithm = scattering::ScatteringAlgorithm::kButtikerProbe;
  spec.options.buttiker.eta = eta;
  spec.options.buttiker.blocks = std::move(blocks);
  return spec;
}

double max_abs_delta(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double out = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
    out = std::max(out, std::abs(a[i] - b[i]));
  return out;
}

}  // namespace

int main() {
  benchutil::header("Buettiker-probe scattering: ballistic parity, probe "
                    "leak, monotonic dephasing, world-size identity");

  omen::Simulator probe(base_config(16));
  const auto win = transport::band_window(probe.bands(9));
  const double mid = 0.5 * (win.emin + win.emax);
  std::vector<double> grid;
  for (double e = win.emin + 0.05; e < win.emax; e += 0.04)
    grid.push_back(e);
  std::vector<double> cgrid;
  for (double e = mid - 0.4; e <= mid + 0.4; e += 0.04) cgrid.push_back(e);
  std::vector<double> barrier(16, 0.0);
  barrier[7] = barrier[8] = 0.5;

  // --- gate 1: eta = 0 is bitwise-identical to the ballistic pipeline ----
  omen::Simulator ballistic(base_config(16));
  omen::Simulator zero_eta(base_config(16));
  zero_eta.set_scattering(buttiker(0.0));

  const auto t_ballistic = ballistic.transmission_spectrum(grid, &barrier);
  const auto t_zero = zero_eta.transmission_spectrum(grid, &barrier);
  const auto q_ballistic =
      ballistic.charge_density(cgrid, mid, mid - 0.2, &barrier);
  const auto q_zero = zero_eta.charge_density(cgrid, mid, mid - 0.2, &barrier);
  const double parity_dt =
      max_abs_delta(t_ballistic.transmission, t_zero.transmission);
  const double parity_dq = max_abs_delta(q_ballistic, q_zero);
  const bool parity_gate = parity_dt == 0.0 && parity_dq == 0.0 &&
                           zero_eta.probe_sites().empty();
  std::printf("ballistic parity (eta = 0): max|dT| = %.3g, max|drho| = %.3g "
              "(gate == 0: %s)\n",
              parity_dt, parity_dq, parity_gate ? "yes" : "NO");

  // --- gate 2: tuned probes leak nothing -------------------------------
  // A dephasing ladder over the interior of the barrier device: after the
  // Newton loop every probe's net current must vanish to <= 1e-10 relative
  // to the terminal currents, which then balance exactly.
  omen::Simulator dissipative(base_config(16));
  dissipative.set_scattering(buttiker(0.1));
  const std::size_t num_probes = dissipative.probe_sites().size();
  benchutil::WallTimer tune_timer;
  const auto currents =
      dissipative.terminal_currents(grid, {mid + 0.1, mid - 0.1}, &barrier);
  const double tune_wall = tune_timer.seconds();
  const auto& tune = dissipative.last_probe_tune();
  const double terminal_scale =
      std::max(std::abs(currents[0]), std::abs(currents[1]));
  const double balance =
      std::abs(currents[0] + currents[1]) / std::max(1.0, terminal_scale);
  const bool leak_gate = tune.converged && tune.max_residual <= 1e-10 &&
                         balance <= 1e-10 && terminal_scale > 1e-9;
  std::printf("probe leak (%zu probes, %d Newton iterations, %.3f s): "
              "max|I_p|/max|I| = %.3g, terminal balance = %.3g "
              "(gate <= 1e-10: %s)\n",
              num_probes, tune.iterations, tune_wall, tune.max_residual,
              balance, leak_gate ? "yes" : "NO");

  // --- gate 3: conductance degrades monotonically with eta ---------------
  const std::vector<double> etas{0.0, 0.02, 0.1, 0.3};
  std::vector<double> ramp;
  bool mono_gate = true;
  for (const double eta : etas) {
    omen::Simulator sim(base_config(16));
    if (eta > 0.0) sim.set_scattering(buttiker(eta));
    const double current =
        sim.current(grid, mid + 0.05, mid - 0.05, &barrier);
    if (!ramp.empty())
      mono_gate = mono_gate && current <= ramp.back() * (1.0 + 1e-12);
    mono_gate = mono_gate && current > 0.0;
    ramp.push_back(current);
  }
  std::printf("dephasing ramp I(eta): {%.5e, %.5e, %.5e, %.5e} "
              "(monotone non-increasing: %s)\n",
              ramp[0], ramp[1], ramp[2], ramp[3], mono_gate ? "yes" : "NO");

  // --- gate 4: bit-identity across world sizes under stealing ------------
  omen::SimulationConfig world_cfg = base_config(16);
  world_cfg.point.scattering = buttiker(0.07, {2, 5});
  omen::Simulator reference(world_cfg);
  const auto t_ref = reference.transmission_spectrum(grid, &barrier);
  const auto i_ref =
      reference.terminal_currents(grid, {mid + 0.1, mid - 0.1}, &barrier);
  bool world_gate = !t_ref.t_matrix.empty();
  double worst_world_dt = 0.0;
  for (const int ranks : {1, 2, 4}) {
    omen::SimulationConfig cfg = world_cfg;
    cfg.num_ranks = ranks;
    cfg.work_stealing = true;
    omen::Simulator sim(cfg);
    const auto sp = sim.transmission_spectrum(grid, &barrier);
    const auto currents =
        sim.terminal_currents(grid, {mid + 0.1, mid - 0.1}, &barrier);
    double dt = 0.0;
    for (std::size_t ie = 0; ie < t_ref.t_matrix.size(); ++ie)
      dt = std::max(dt, max_abs_delta(sp.t_matrix[ie], t_ref.t_matrix[ie]));
    dt = std::max(dt, max_abs_delta(currents, i_ref));
    worst_world_dt = std::max(worst_world_dt, dt);
    world_gate = world_gate && dt == 0.0;
  }
  std::printf("world sizes {1, 2, 4} + stealing: max|dT_pq| + max|dI| = %.3g "
              "(gate == 0: %s)\n",
              worst_world_dt, world_gate ? "yes" : "NO");

  // --- JSON record -------------------------------------------------------
  std::string json = "{\n";
  {
    benchutil::JsonWriter w;
    w.field("max_dt", parity_dt);
    w.field("max_drho", parity_dq, true);
    json += "  \"ballistic_parity\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("num_probes", static_cast<double>(num_probes));
    w.field("newton_iterations", static_cast<double>(tune.iterations));
    w.field("tune_wall_s", tune_wall);
    w.field("probe_leak", tune.max_residual);
    w.field("terminal_balance", balance, true);
    json += "  \"probe_tuning\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("current_eta_0", ramp[0]);
    w.field("current_eta_0p02", ramp[1]);
    w.field("current_eta_0p1", ramp[2]);
    w.field("current_eta_0p3", ramp[3], true);
    json += "  \"dephasing_ramp\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("ballistic_bitwise_identical", parity_gate ? 1.0 : 0.0);
    w.field("probe_leak_le_1e10", leak_gate ? 1.0 : 0.0);
    w.field("conductance_monotone", mono_gate ? 1.0 : 0.0);
    w.field("world_sizes_bit_identical", world_gate ? 1.0 : 0.0, true);
    json += "  \"gates\": {" + w.body + "}\n}\n";
  }
  std::FILE* f = std::fopen("BENCH_scattering.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_scattering.json\n");
  }
  return parity_gate && leak_gate && mono_gate && world_gate ? 0 : 1;
}
