// Fig. 1(b): energy-resolved transmission through a Si nanowire,
// LDA vs. HSE06 hybrid functional.
//
// Paper workload: d = 2.2 nm, L = 34.8 nm, 10560 atoms.  Scaled workload
// here: d = 0.6 nm, 8 cells (see DESIGN.md, scale policy).  The headline
// behaviour to reproduce: T(E) vanishes inside the band gap and rises as a
// staircase outside it, and the HSE06 parameterization yields a *wider* gap
// than LDA (the known LDA underestimation corrected by hybrid functionals).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "omen/simulator.hpp"
#include "transport/bands.hpp"

using namespace omenx;

namespace {

omen::Simulator make_sim(dft::Functional f) {
  omen::SimulationConfig cfg;
  cfg.structure = lattice::make_nanowire(0.6, 8);
  cfg.functional = f;
  cfg.point.obc = transport::ObcAlgorithm::kFeast;
  cfg.point.obc_opts.feast.annulus_r = 30.0;
  cfg.point.solver = transport::SolverAlgorithm::kSplitSolve;
  cfg.point.partitions = 2;
  cfg.num_devices = 2;
  return omen::Simulator(cfg);
}

// Largest spectral gap within the lower part of the band structure (the
// physically meaningful valence/conduction-like separation of the emulator).
struct Gap {
  double lo, hi;
  double width() const { return hi - lo; }
};

Gap largest_gap(const transport::BandStructure& bs) {
  std::vector<double> all;
  for (const auto& bands : bs.bands)
    for (const double e : bands) all.push_back(e);
  std::sort(all.begin(), all.end());
  // Restrict to the lowest 60% of states: the top of the emulator spectrum
  // is distorted by near-singular overlaps and not physical.
  all.resize(std::max<std::size_t>(2, all.size() * 6 / 10));
  Gap best{all[0], all[0]};
  for (std::size_t i = 1; i < all.size(); ++i)
    if (all[i] - all[i - 1] > best.width()) best = {all[i - 1], all[i]};
  return best;
}

}  // namespace

int main() {
  benchutil::header("Fig. 1(b): Si nanowire T(E), LDA vs HSE06");
  std::printf("paper: d=2.2 nm, 10560 atoms | here: d=0.6 nm, 72 atoms "
              "(scaled, same code path)\n");
  benchutil::WallTimer timer;

  omen::Simulator lda = make_sim(dft::Functional::kLDA);
  omen::Simulator hse = make_sim(dft::Functional::kHSE06);
  const Gap gap_lda = largest_gap(lda.bands(17));
  // For HSE06, track the *same* physical gap: the spectral gap whose lower
  // edge sits closest to the LDA one (shell shifts move it, they do not
  // create a new gap elsewhere).
  const Gap gap_hse = [&] {
    std::vector<double> all;
    for (const auto& bands : hse.bands(17).bands)
      for (const double e : bands) all.push_back(e);
    std::sort(all.begin(), all.end());
    all.resize(std::max<std::size_t>(2, all.size() * 6 / 10));
    Gap best{all[0], all[0]};
    double dist = 1e300;
    for (std::size_t i = 1; i < all.size(); ++i) {
      const Gap g{all[i - 1], all[i]};
      if (g.width() < 0.05) continue;
      const double d = std::abs(g.lo - gap_lda.lo);
      if (d < dist) {
        dist = d;
        best = g;
      }
    }
    return best;
  }();

  benchutil::rule();
  std::printf("%10s %14s %14s %12s\n", "functional", "gap low (eV)",
              "gap high (eV)", "gap (eV)");
  std::printf("%10s %14.3f %14.3f %12.3f\n", "LDA", gap_lda.lo, gap_lda.hi,
              gap_lda.width());
  std::printf("%10s %14.3f %14.3f %12.3f\n", "HSE06", gap_hse.lo, gap_hse.hi,
              gap_hse.width());
  std::printf("HSE06 valence-edge shift: %+.3f eV | gap change: %+.3f eV\n",
              gap_hse.lo - gap_lda.lo, gap_hse.width() - gap_lda.width());
  std::printf("(paper: the hybrid functional widens the gap; in this Hueckel "
              "emulator the shell\n shifts raise the band edge but also "
              "rescale the couplings — see EXPERIMENTS.md)\n");

  // T(E) across the gap region of each functional.
  benchutil::rule();
  std::printf("%12s %14s %14s\n", "E (eV)", "T_LDA", "T_HSE06");
  const double lo = std::min(gap_lda.lo, gap_hse.lo) - 0.15;
  const double hi = std::max(gap_lda.hi, gap_hse.hi) + 0.15;
  std::vector<double> grid;
  for (double e = lo; e <= hi; e += (hi - lo) / 16.0) grid.push_back(e);
  const auto t_lda = lda.transmission_spectrum(grid);
  const auto t_hse = hse.transmission_spectrum(grid);
  for (std::size_t i = 0; i < grid.size(); ++i)
    std::printf("%12.3f %14.5f %14.5f\n", grid[i], t_lda.transmission[i],
                t_hse.transmission[i]);
  benchutil::rule();
  std::printf("T(E) ~ 0 inside each functional's gap; staircase outside\n");
  std::printf("elapsed: %.1f s\n", timer.seconds());
  return 0;
}
