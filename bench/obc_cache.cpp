// OBC boundary-cache bench and CI gate.
//
// The lead Hamiltonian never depends on the device potential, so every SCF
// outer iteration re-solves the same lead eigenproblems.  This bench runs a
// 3-outer-iteration SCF on the chain-FET fixture (the scf_convergence
// device) twice — boundary caching off, then on — and gates on:
//   * the cached run performing >= 2x fewer lead eigenproblem solves
//     (obc::boundary_solve_count) than the uncached run,
//   * max |dT(E)| < 1e-12 between the cached and uncached spectra on the
//     converged potential (expected: exactly 0 — a cache hit replays the
//     stored Boundary verbatim),
//   * bit-identical spectra and charge at CommWorld sizes 1 / 2 / 4, and
//   * bit-identical results under work stealing (hot-k request on 4 ranks,
//     cached vs uncached, first sweep and cached re-sweep).
// BENCH_obc.json records the counts, ratios, and deltas; nonzero exit if
// any gate fails.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "numeric/blas.hpp"
#include "obc/strategy.hpp"
#include "omen/engine.hpp"
#include "omen/simulator.hpp"
#include "poisson/scf.hpp"
#include "transport/bands.hpp"

using namespace omenx;
using numeric::idx;

namespace {

omen::SimulationConfig chain_fet_config(bool cache) {
  omen::SimulationConfig cfg;
  lattice::Structure chain;
  chain.cell_atoms = {{lattice::Species::kLi, {0.0, 0.0, 0.0}}};
  chain.cell_length = 0.5;
  chain.num_cells = 16;
  chain.name = "chain FET";
  cfg.structure = chain;
  cfg.build.cutoff_nm = 1.0;  // NBW = 2
  cfg.point.obc = transport::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
  cfg.cache_boundaries = cache;
  return cfg;
}

struct ScfRun {
  std::uint64_t lead_solves = 0;
  double wall_s = 0.0;
  std::vector<double> potential;
  std::vector<double> transmission;  ///< T(E) on the converged potential
};

/// 3-outer-iteration SCF (tolerances pinned so all three always run), then
/// the transmission spectrum on the resulting potential.
ScfRun run_scf(omen::Simulator& sim, const std::vector<double>& grid,
               double mu_s, double vds) {
  const lattice::DeviceRegions regions{5, 6, 5};
  poisson::ScfOptions scf;
  scf.poisson.screening_length_cells = 2.0;
  scf.poisson.charge_coupling = 0.25;
  scf.max_iter = 3;
  scf.tol = 1e-14;  // never converges early: exactly 3 charge sweeps
  scf.charge_tol = 0.0;
  scf.anderson_depth = 3;

  ScfRun out;
  const std::uint64_t solves0 = obc::boundary_solve_count();
  benchutil::WallTimer timer;
  poisson::ChargeModel charge = [&](const std::vector<double>& v) {
    return sim.charge_density(grid, mu_s, mu_s - vds, &v);
  };
  const auto res = poisson::self_consistent_potential(regions, 0.1, vds,
                                                      charge, scf);
  out.wall_s = timer.seconds();
  out.lead_solves = obc::boundary_solve_count() - solves0;
  out.potential = res.potential;
  out.transmission =
      sim.transmission_spectrum(grid, &res.potential).transmission;
  return out;
}

double max_abs_delta(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double out = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
    out = std::max(out, std::abs(a[i] - b[i]));
  return out;
}

dft::LeadBlocks hot_k_lead(idx s, unsigned seed) {
  dft::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  numeric::CMatrix h0 = numeric::random_cmatrix(s, s, seed);
  lead.h[0] = (h0 + numeric::dagger(h0)) * numeric::cplx{0.25};
  lead.h[1] = numeric::random_cmatrix(s, s, seed + 1) * numeric::cplx{0.4};
  lead.s[0] = numeric::CMatrix::identity(s);
  lead.s[1] = numeric::CMatrix(s, s);
  return lead;
}

}  // namespace

int main() {
  benchutil::header("OBC boundary cache: SCF lead-solve reuse + determinism");

  // Shared fixture pieces: band window and the SCF energy grid.
  omen::Simulator probe(chain_fet_config(true));
  const auto win = transport::band_window(probe.bands(9));
  const double mu_s = win.emin + 0.1;
  const double vds = 0.2;
  std::vector<double> grid;
  for (double e = win.emin - 0.02; e <= mu_s + 0.3; e += 0.02)
    grid.push_back(e);

  // --- gate 1+2: lead-solve ratio and dT over the 3-iteration SCF --------
  omen::Simulator uncached(chain_fet_config(false));
  omen::Simulator cached(chain_fet_config(true));
  const ScfRun base = run_scf(uncached, grid, mu_s, vds);
  const ScfRun fast = run_scf(cached, grid, mu_s, vds);
  const auto cache_stats = cached.boundary_cache_stats();

  const double ratio =
      static_cast<double>(base.lead_solves) /
      static_cast<double>(std::max<std::uint64_t>(1, fast.lead_solves));
  const bool solve_gate = base.lead_solves >= 2 * fast.lead_solves;
  const double max_dv = max_abs_delta(base.potential, fast.potential);
  const double max_dt = max_abs_delta(base.transmission, fast.transmission);
  const bool dt_gate = max_dt < 1e-12 && max_dv < 1e-12;

  std::printf("%-28s %12s %10s %12s\n", "configuration", "lead solves",
              "wall (s)", "cache hits");
  benchutil::rule();
  std::printf("%-28s %12llu %10.3f %12s\n", "uncached (3-iter SCF)",
              static_cast<unsigned long long>(base.lead_solves), base.wall_s,
              "-");
  std::printf("%-28s %12llu %10.3f %12llu\n", "cached (3-iter SCF)",
              static_cast<unsigned long long>(fast.lead_solves), fast.wall_s,
              static_cast<unsigned long long>(cache_stats.hits));
  benchutil::rule();
  std::printf("lead-solve ratio: %.2fx (gate >= 2x: %s), max|dT| = %.3g, "
              "max|dV| = %.3g (gate < 1e-12: %s)\n",
              ratio, solve_gate ? "yes" : "NO", max_dt, max_dv,
              dt_gate ? "yes" : "NO");

  // --- gate 3: bit-identical across world sizes 1 / 2 / 4 ----------------
  bool world_gate = true;
  double max_dt_world = 0.0;
  std::vector<double> world_dt;
  for (const int ranks : {1, 2, 4}) {
    omen::SimulationConfig cfg = chain_fet_config(true);
    cfg.num_ranks = ranks;
    omen::Simulator sim(cfg);
    // Two sweeps: the second is served from the per-rank caches.
    const auto first =
        sim.transmission_spectrum(grid, &fast.potential).transmission;
    const auto second =
        sim.transmission_spectrum(grid, &fast.potential).transmission;
    const double d_first = max_abs_delta(first, base.transmission);
    const double d_second = max_abs_delta(second, base.transmission);
    const double d = std::max(d_first, d_second);
    world_dt.push_back(d);
    max_dt_world = std::max(max_dt_world, d);
    world_gate = world_gate && d < 1e-12;
    std::printf("world size %d: max|dT| vs uncached = %.3g (resweep %.3g)\n",
                ranks, d_first, d_second);
  }

  // --- gate 4: bit-identical under work stealing -------------------------
  // Hot-k request on 4 ranks: idle groups steal the hot momentum's tail,
  // so cached boundaries land in thieves' caches under the owner's global
  // k index.  Cached first sweep, cached re-sweep, and the uncached run
  // must agree exactly.
  const idx s = 5, cells = 10;
  std::vector<dft::LeadBlocks> leads;
  for (unsigned k = 0; k < 4; ++k) leads.push_back(hot_k_lead(s, 91 + 3 * k));
  omen::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point.obc = transport::ObcAlgorithm::kDecimation;
  req.point.solver = transport::SolverAlgorithm::kBlockLU;
  req.point.want_density = false;
  req.point.want_current = false;
  req.energies.resize(4);
  for (int ie = 0; ie < 32; ++ie)
    req.energies[0].push_back(-2.0 + 0.12 * ie);
  for (std::size_t k = 1; k < 4; ++k)
    for (int ie = 0; ie < 4; ++ie)
      req.energies[k].push_back(-1.0 + 0.5 * ie);

  omen::EngineConfig ucfg;
  ucfg.num_ranks = 4;
  ucfg.cache_boundaries = false;
  omen::Engine steal_uncached(ucfg);
  omen::EngineConfig ccfg;
  ccfg.num_ranks = 4;
  omen::Engine steal_cached(ccfg);
  const auto st_ref = steal_uncached.run(req);
  const auto st_a = steal_cached.run(req);
  const auto st_b = steal_cached.run(req);
  double max_dt_steal = 0.0;
  for (std::size_t k = 0; k < 4; ++k) {
    max_dt_steal =
        std::max(max_dt_steal, max_abs_delta(st_a.caroli[k], st_ref.caroli[k]));
    max_dt_steal =
        std::max(max_dt_steal, max_abs_delta(st_b.caroli[k], st_ref.caroli[k]));
  }
  const bool steal_gate = max_dt_steal < 1e-12;
  std::printf("work stealing (4 ranks, %lld stolen): max|dT| = %.3g "
              "(gate < 1e-12: %s)\n",
              static_cast<long long>(st_a.stats.tasks_stolen), max_dt_steal,
              steal_gate ? "yes" : "NO");

  // --- JSON record -------------------------------------------------------
  std::string json = "{\n";
  {
    benchutil::JsonWriter w;
    w.field("lead_solves_uncached", static_cast<double>(base.lead_solves));
    w.field("lead_solves_cached", static_cast<double>(fast.lead_solves));
    w.field("solve_ratio", ratio);
    w.field("cache_hits", static_cast<double>(cache_stats.hits));
    w.field("cache_misses", static_cast<double>(cache_stats.misses));
    w.field("scf_wall_uncached_s", base.wall_s);
    w.field("scf_wall_cached_s", fast.wall_s);
    w.field("max_dt_vs_uncached", max_dt);
    w.field("max_dv_vs_uncached", max_dv, true);
    json += "  \"scf_3iter\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("max_dt_world_1", world_dt[0]);
    w.field("max_dt_world_2", world_dt[1]);
    w.field("max_dt_world_4", world_dt[2]);
    w.field("tasks_stolen", static_cast<double>(st_a.stats.tasks_stolen));
    w.field("max_dt_stealing", max_dt_steal, true);
    json += "  \"determinism\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("solve_ratio_ge_2x", solve_gate ? 1.0 : 0.0);
    w.field("dt_below_1e12", dt_gate ? 1.0 : 0.0);
    w.field("world_sizes_bit_identical", world_gate ? 1.0 : 0.0);
    w.field("stealing_bit_identical", steal_gate ? 1.0 : 0.0, true);
    json += "  \"gates\": {" + w.body + "}\n}\n";
  }
  std::FILE* f = std::fopen("BENCH_obc.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_obc.json\n");
  }
  return solve_gate && dt_gate && world_gate && steal_gate ? 0 : 1;
}
