// Fig. 4: structure of the open-boundary Schroedinger system
// T x = b with T = (E S - H - Sigma^RB).
//
// Reports the block-tridiagonal shape, where the self-energy corrections
// land (first/last diagonal blocks), and the sparsity of the right-hand
// side (non-zeros confined to the top and bottom block rows) — the
// structure SplitSolve exploits.
#include <cstdio>

#include "bench_util.hpp"
#include "blockmat/block_tridiag.hpp"
#include "dft/hamiltonian.hpp"
#include "lattice/structure.hpp"
#include "obc/decimation.hpp"
#include "obc/modes.hpp"
#include "obc/self_energy.hpp"
#include "obc/shift_invert.hpp"
#include "solvers/splitsolve.hpp"

using namespace omenx;
using numeric::cplx;
using numeric::idx;

int main() {
  benchutil::header("Fig. 4: sparsity pattern of (E S - H - Sigma) x = Inj");
  benchutil::WallTimer timer;
  const auto wire = lattice::make_nanowire(0.6, 8);
  const dft::BasisLibrary basis;
  const auto lead = dft::build_lead_blocks(wire, basis);
  const auto folded = dft::fold_lead(lead);
  const std::vector<double> pot(8, 0.0);
  const auto dm = dft::assemble_device(lead, 8, pot);

  const double energy = -9.0;
  const auto a = blockmat::BlockTridiag::es_minus_h(cplx{energy}, dm.s, dm.h);
  const auto modes = obc::compute_modes_shift_invert(lead, cplx{energy});
  const auto ops = obc::lead_operators(folded, cplx{energy});
  const auto bnd = obc::build_boundary(modes, ops);
  const auto t = solvers::apply_boundary(a, bnd.sigma_l, bnd.sigma_r);

  const idx nb = t.num_blocks(), s = t.block_size();
  std::printf("device: %s, %lld cells (fold %lld)\n", wire.name.c_str(),
              static_cast<long long>(dm.cells),
              static_cast<long long>(dm.fold));
  std::printf("T: %lld x %lld, block tridiagonal with %lld blocks of %lld\n",
              static_cast<long long>(t.dim()), static_cast<long long>(t.dim()),
              static_cast<long long>(nb), static_cast<long long>(s));
  benchutil::rule();
  std::printf("%18s %14s %14s\n", "region", "nnz(A)", "nnz(T=A-Sigma)");
  const double tol = 1e-10;
  for (idx i = 0; i < nb; ++i) {
    std::printf("  diag block %2lld    %12lld   %12lld%s\n",
                static_cast<long long>(i),
                static_cast<long long>(blockmat::count_nnz(a.diag(i), tol)),
                static_cast<long long>(blockmat::count_nnz(t.diag(i), tol)),
                (i == 0 || i == nb - 1) ? "   <- Sigma^RB applied here" : "");
  }
  benchutil::rule();
  // RHS structure: Inj non-zero only in the first block rows.
  std::printf("Inj: %lld columns (propagating modes), non-zero rows confined"
              " to the top block\n",
              static_cast<long long>(bnd.inj.cols()));
  idx inj_nnz = blockmat::count_nnz(bnd.inj, tol);
  std::printf("Inj nnz = %lld of %lld stored entries (top block only; the "
              "full RHS would have %lld rows)\n",
              static_cast<long long>(inj_nnz),
              static_cast<long long>(bnd.inj.size()),
              static_cast<long long>(t.dim()));
  std::printf("off-band blocks outside the tridiagonal: exactly 0 (by "
              "construction)\n");
  std::printf("elapsed: %.1f s\n", timer.seconds());
  return 0;
}
