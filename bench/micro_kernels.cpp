// Kernel microbenchmarks (google-benchmark): the primitives behind
// SplitSolve (zgemm, zgesv-like LU, RGF sweeps) and the FEAST contour solve.
#include <benchmark/benchmark.h>

#include "blockmat/block_tridiag.hpp"
#include "numeric/blas.hpp"
#include "numeric/lu.hpp"
#include "obc/companion.hpp"
#include "solvers/rgf.hpp"

using namespace omenx;
using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

namespace {

CMatrix well_conditioned(idx n, unsigned seed) {
  CMatrix a = numeric::random_cmatrix(n, n, seed);
  for (idx i = 0; i < n; ++i) a(i, i) += cplx{double(n)};
  return a;
}

blockmat::BlockTridiag tridiag(idx nb, idx s) {
  blockmat::BlockTridiag t(nb, s);
  for (idx i = 0; i < nb; ++i) {
    t.diag(i) = numeric::random_cmatrix(s, s, 5 + (unsigned)i);
    for (idx d = 0; d < s; ++d) t.diag(i)(d, d) += cplx{8.0};
    if (i + 1 < nb) {
      t.upper(i) = numeric::random_cmatrix(s, s, 105 + (unsigned)i);
      t.lower(i) = numeric::random_cmatrix(s, s, 205 + (unsigned)i);
    }
  }
  return t;
}

}  // namespace

static void BM_Zgemm(benchmark::State& state) {
  const idx n = state.range(0);
  const CMatrix a = numeric::random_cmatrix(n, n, 1);
  const CMatrix b = numeric::random_cmatrix(n, n, 2);
  CMatrix c(n, n);
  for (auto _ : state) {
    numeric::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(8 * n * n * n) * state.iterations() * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Zgemm)->Arg(64)->Arg(128)->Arg(256);

static void BM_ZgesvNoPiv(benchmark::State& state) {
  // The MAGMA zgesv_nopiv_gpu stand-in: LU without pivoting + solve.
  const idx n = state.range(0);
  const CMatrix a = well_conditioned(n, 3);
  const CMatrix b = numeric::random_cmatrix(n, 16, 4);
  for (auto _ : state) {
    numeric::LUFactor lu(a, numeric::Pivoting::kNone);
    benchmark::DoNotOptimize(lu.solve(b).data());
  }
}
BENCHMARK(BM_ZgesvNoPiv)->Arg(64)->Arg(128)->Arg(256);

static void BM_ZgesvPartialPivot(benchmark::State& state) {
  const idx n = state.range(0);
  const CMatrix a = well_conditioned(n, 5);
  const CMatrix b = numeric::random_cmatrix(n, 16, 6);
  for (auto _ : state) {
    numeric::LUFactor lu(a, numeric::Pivoting::kPartial);
    benchmark::DoNotOptimize(lu.solve(b).data());
  }
}
BENCHMARK(BM_ZgesvPartialPivot)->Arg(64)->Arg(128)->Arg(256);

static void BM_RgfBlockColumns(benchmark::State& state) {
  const auto t = tridiag(state.range(0), 48);
  for (auto _ : state)
    benchmark::DoNotOptimize(solvers::rgf_block_columns(t).data());
}
BENCHMARK(BM_RgfBlockColumns)->Arg(4)->Arg(8)->Arg(16);

static void BM_FeastContourPoint(benchmark::State& state) {
  // One (z B - A)^{-1} B Y solve via the companion reduction.
  const idx s = state.range(0);
  dft::LeadBlocks lead;
  lead.h.resize(3);
  lead.s.resize(3);
  CMatrix h0 = numeric::random_cmatrix(s, s, 11);
  lead.h[0] = h0 + numeric::dagger(h0);
  lead.h[1] = numeric::random_cmatrix(s, s, 12);
  lead.h[2] = numeric::random_cmatrix(s, s, 13) * cplx{0.1};
  lead.s[0] = CMatrix::identity(s);
  lead.s[1] = CMatrix(s, s);
  lead.s[2] = CMatrix(s, s);
  const obc::CompanionPencil pencil(lead, cplx{0.2});
  const CMatrix y = numeric::random_cmatrix(pencil.dim(), s / 2, 14);
  const cplx z{1.1, 0.4};
  for (auto _ : state)
    benchmark::DoNotOptimize(pencil.solve_shifted(z, y).data());
}
BENCHMARK(BM_FeastContourPoint)->Arg(32)->Arg(64)->Arg(128);

BENCHMARK_MAIN();
