// Kernel microbenchmarks: the primitives behind SplitSolve (zgemm,
// zgesv-like LU, RGF sweeps) plus the end-to-end energy-sweep pipeline.
//
// Every section measures the seed-era reference implementation against the
// current packed/blocked kernels and prints GFLOP/s (or points/s) for both,
// so the performance trajectory of the repository is recorded run over run.
// Results are also written as BENCH_kernels.json in the working directory.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "blockmat/block_tridiag.hpp"
#include "dft/hamiltonian.hpp"
#include "numeric/blas.hpp"
#include "numeric/lu.hpp"
#include "parallel/thread_pool.hpp"
#include "solvers/rgf.hpp"
#include "transport/transmission.hpp"

using namespace omenx;
using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

namespace {

CMatrix well_conditioned(idx n, unsigned seed) {
  CMatrix a = numeric::random_cmatrix(n, n, seed);
  for (idx i = 0; i < n; ++i) a(i, i) += cplx{double(n)};
  return a;
}

blockmat::BlockTridiag tridiag(idx nb, idx s) {
  blockmat::BlockTridiag t(nb, s);
  for (idx i = 0; i < nb; ++i) {
    t.diag(i) = numeric::random_cmatrix(s, s, 5 + (unsigned)i);
    for (idx d = 0; d < s; ++d) t.diag(i)(d, d) += cplx{8.0};
    if (i + 1 < nb) {
      t.upper(i) = numeric::random_cmatrix(s, s, 105 + (unsigned)i);
      t.lower(i) = numeric::random_cmatrix(s, s, 205 + (unsigned)i);
    }
  }
  return t;
}

// Seed-era GEMM (PR 1 baseline): materializes op(A)/op(B) as copies and
// runs a cache-blocked jik loop on std::complex scalars.  Kept verbatim as
// the "before" reference.
void seed_gemm(const CMatrix& a_in, const CMatrix& b_in, CMatrix& c) {
  const CMatrix a = a_in;  // the seed's apply_op('N') copied even for 'N'
  const CMatrix b = b_in;
  const idx m = a.rows(), k = a.cols(), n = b.cols();
  if (c.rows() != m || c.cols() != n) c.resize(m, n);
  c.fill(cplx{0.0});
  constexpr idx kBlock = 64;
  for (idx i0 = 0; i0 < m; i0 += kBlock) {
    const idx i1 = std::min(i0 + kBlock, m);
    for (idx k0 = 0; k0 < k; k0 += kBlock) {
      const idx k1 = std::min(k0 + kBlock, k);
      for (idx i = i0; i < i1; ++i) {
        cplx* crow = c.row_ptr(i);
        const cplx* arow = a.row_ptr(i);
        for (idx kk = k0; kk < k1; ++kk) {
          const cplx av = arow[kk];
          if (av == cplx{0.0}) continue;
          const cplx* brow = b.row_ptr(kk);
          for (idx j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

template <typename F>
double time_seconds(F&& f, int reps) {
  f();  // warm up
  benchutil::WallTimer timer;
  for (int r = 0; r < reps; ++r) f();
  return timer.seconds() / reps;
}

// One synthetic 8-orbital chain device for the sweep benchmark.
dft::LeadBlocks bench_lead(idx s) {
  dft::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  CMatrix h0 = numeric::random_cmatrix(s, s, 21);
  lead.h[0] = (h0 + numeric::dagger(h0)) * cplx{0.25};
  lead.h[1] = numeric::random_cmatrix(s, s, 22) * cplx{0.4};
  lead.s[0] = CMatrix::identity(s);
  lead.s[1] = CMatrix(s, s);
  return lead;
}

}  // namespace

int main() {
  std::string json = "{\n  \"gemm\": [\n";
  benchutil::header("zgemm: seed kernel vs packed split-complex kernel");
  std::printf("%6s %14s %14s %10s\n", "n", "seed GF/s", "packed GF/s",
              "speedup");
  bool first = true;
  for (idx n : {64, 128, 256, 512}) {
    const CMatrix a = numeric::random_cmatrix(n, n, 1);
    const CMatrix b = numeric::random_cmatrix(n, n, 2);
    CMatrix c(n, n), c2(n, n);
    const double flop = 8.0 * double(n) * double(n) * double(n);
    const int reps = n <= 128 ? 40 : (n <= 256 ? 10 : 3);
    const double t_seed = time_seconds([&] { seed_gemm(a, b, c2); }, reps);
    const double t_new = time_seconds([&] { numeric::gemm(a, b, c); }, reps);
    const double g_seed = flop / t_seed * 1e-9;
    const double g_new = flop / t_new * 1e-9;
    std::printf("%6lld %14.2f %14.2f %9.2fx\n", (long long)n, g_seed, g_new,
                g_new / g_seed);
    benchutil::JsonWriter w("%.4f");
    w.field("n", double(n));
    w.field("gflops_seed", g_seed);
    w.field("gflops_packed", g_new);
    w.field("speedup", g_new / g_seed, true);
    json += std::string(first ? "" : ",\n") + "    {" + w.body + "}";
    first = false;
  }
  json += "\n  ],\n  \"lu\": [\n";

  benchutil::header("zgetrf/zgetrs: unblocked vs blocked (GEMM-rich) LU");
  std::printf("%6s %14s %14s %10s\n", "n", "unblk GF/s", "blocked GF/s",
              "speedup");
  first = true;
  for (idx n : {128, 256, 512}) {
    const CMatrix a = well_conditioned(n, 3);
    const CMatrix rhs = numeric::random_cmatrix(n, 16, 4);
    const double flop = 8.0 / 3.0 * double(n) * double(n) * double(n);
    const int reps = n <= 256 ? 8 : 3;
    const double t_ref = time_seconds(
        [&] {
          numeric::LUFactor lu(a, numeric::Pivoting::kPartial, /*panel=*/1);
          benchutil::consume(lu.solve(rhs).data());
        },
        reps);
    const double t_new = time_seconds(
        [&] {
          numeric::LUFactor lu(a, numeric::Pivoting::kPartial);
          benchutil::consume(lu.solve(rhs).data());
        },
        reps);
    const double g_ref = flop / t_ref * 1e-9;
    const double g_new = flop / t_new * 1e-9;
    std::printf("%6lld %14.2f %14.2f %9.2fx\n", (long long)n, g_ref, g_new,
                t_ref / t_new);
    benchutil::JsonWriter w("%.4f");
    w.field("n", double(n));
    w.field("gflops_unblocked", g_ref);
    w.field("gflops_blocked", g_new);
    w.field("speedup", t_ref / t_new, true);
    json += std::string(first ? "" : ",\n") + "    {" + w.body + "}";
    first = false;
  }
  json += "\n  ],\n";

  benchutil::header("RGF block columns (SplitSolve Algorithm 1)");
  {
    const auto t = tridiag(16, 48);
    const double sec =
        time_seconds([&] { benchutil::consume(solvers::rgf_block_columns(t).data()); }, 5);
    std::printf("nb=16 s=48: %.3f ms per preprocess\n", sec * 1e3);
    benchutil::JsonWriter w("%.4f");
    w.field("nb", 16.0);
    w.field("s", 48.0);
    w.field("ms", sec * 1e3, true);
    json += "  \"rgf\": {" + w.body + "},\n";
  }

  benchutil::header("energy sweep: serial vs thread-pool (per-worker workspaces)");
  {
    const idx s = 8, cells = 24, npts = 64;
    const dft::LeadBlocks lead = bench_lead(s);
    const dft::FoldedLead folded = dft::fold_lead(lead);
    const std::vector<double> pot(static_cast<std::size_t>(cells), 0.0);
    const dft::DeviceMatrices dm = dft::assemble_device(lead, cells, pot);
    std::vector<double> energies;
    for (idx i = 0; i < npts; ++i)
      energies.push_back(-2.0 + 4.0 * double(i) / double(npts - 1));
    transport::EnergyPointOptions opts;
    opts.obc = transport::ObcAlgorithm::kDecimation;
    opts.solver = transport::SolverAlgorithm::kBlockLU;
    opts.want_density = false;
    opts.want_current = false;

    auto& pool = parallel::ThreadPool::global();
    const double t_serial = time_seconds(
        [&] {
          benchutil::consume(
              transport::sweep_energy_points(dm, lead, folded, energies, opts)
                  .data());
        },
        2);
    const double t_par = time_seconds(
        [&] {
          benchutil::consume(transport::sweep_energy_points(
                                 dm, lead, folded, energies, opts, nullptr,
                                 &pool)
                                 .data());
        },
        2);
    const double pps_serial = double(npts) / t_serial;
    const double pps_par = double(npts) / t_par;
    std::printf(
        "%lld points, %zu threads: serial %.1f pts/s, pooled %.1f pts/s "
        "(%.2fx)\n",
        (long long)npts, pool.num_threads(), pps_serial, pps_par,
        pps_par / pps_serial);
    benchutil::JsonWriter w("%.4f");
    w.field("points", double(npts));
    w.field("threads", double(pool.num_threads()));
    w.field("serial_pts_per_s", pps_serial);
    w.field("parallel_pts_per_s", pps_par);
    w.field("speedup", pps_par / pps_serial, true);
    json += "  \"sweep\": {" + w.body + "}\n}\n";
  }

  std::FILE* f = std::fopen("BENCH_kernels.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_kernels.json\n");
  }
  return 0;
}
