// Fig. 11 + Tables II/III: OMEN weak and strong scaling on Titan.
//
// Both tables are regenerated from the calibrated machine model driven by
// the *same* dynamic nodes-per-momentum scheduler used by the live code
// (src/omen/scheduler).  A live mini-run with thread-backed groups
// demonstrates that the distribution logic behaves as modeled.
#include <cstdio>
#include <numeric>

#include "bench_util.hpp"
#include "omen/scheduler.hpp"
#include "perf/scaling.hpp"

using namespace omenx;
using numeric::idx;

int main() {
  perf::OmenRunModel model;

  benchutil::header("Table II: weak scaling (Si DG UTBFET, 23040 atoms)");
  std::printf("%14s %10s %14s %16s   paper rows\n", "Hybrid nodes", "Time (s)",
              "Avg E/group", "Avg Time/E (s)");
  const double paper_t2[][3] = {{1277, 14.1, 90.8}, {1197, 13.4, 89.0},
                                {1281, 13.8, 92.7}, {1213, 13.8, 87.7},
                                {1204, 13.3, 90.3}, {1130, 12.9, 87.5}};
  const std::vector<int> weak_nodes{588, 1176, 2352, 4704, 9408, 18564};
  const auto weak = model.weak_scaling(weak_nodes);
  for (std::size_t i = 0; i < weak.size(); ++i) {
    std::printf("%14d %10.0f %14.1f %16.1f   (paper: %.0f s, %.1f, %.1f)\n",
                weak[i].nodes, weak[i].time_s, weak[i].avg_e_per_group,
                weak[i].time_per_energy, paper_t2[i][0], paper_t2[i][1],
                paper_t2[i][2]);
  }

  benchutil::header("Table III: strong scaling + sustained performance");
  std::printf("%14s %10s %10s %10s   paper rows\n", "Hybrid nodes", "Time (s)",
              "Eff (%)", "PFlop/s");
  const double paper_t3[][3] = {{26975, 100.0, 0.54}, {13593, 99.2, 1.06},
                                {6806, 99.1, 2.12},  {3415, 98.7, 4.23},
                                {1711, 98.5, 8.45},  {1130, 97.3, 12.8}};
  const std::vector<int> strong_nodes{756, 1512, 3024, 6048, 12096, 18564};
  const auto strong = model.strong_scaling(strong_nodes);
  for (std::size_t i = 0; i < strong.size(); ++i) {
    std::printf("%14d %10.0f %10.1f %10.2f   (paper: %.0f s, %.1f%%, %.2f)\n",
                strong[i].nodes, strong[i].time_s, 100.0 * strong[i].efficiency,
                strong[i].pflops, paper_t3[i][0], paper_t3[i][1],
                paper_t3[i][2]);
  }
  benchutil::rule();
  // The tuned run: zhesv_nopiv_gpu + Hermitian A in 2-D structures.
  perf::OmenRunModel tuned = model;
  tuned.tflops_per_energy = 228.0;
  tuned.time_per_energy_s = model.time_per_energy_s * 912.5 / 1130.0;
  const auto best = tuned.strong_scaling({18564});
  std::printf("tuned run (zhesv, Hermitian A): %0.0f s, %.2f PFlop/s   "
              "(paper: 912.5 s, 15.01 PFlop/s)\n",
              best[0].time_s, best[0].pflops);

  benchutil::header("Live scheduler check (21 k-points, dynamic allocation)");
  const auto loads = model.energies_per_k();
  const idx total_e = std::accumulate(loads.begin(), loads.end(), idx{0});
  std::printf("energies per k in [%lld, %lld], total %lld (paper: 2650-3050, "
              "59908)\n",
              static_cast<long long>(
                  *std::min_element(loads.begin(), loads.end())),
              static_cast<long long>(
                  *std::max_element(loads.begin(), loads.end())),
              static_cast<long long>(total_e));
  for (const int nodes : strong_nodes) {
    const auto alloc = omen::allocate_groups(loads, nodes / 4);
    std::printf("  %5d nodes: makespan %6.0f E-points, efficiency %.1f%%\n",
                nodes, omen::allocation_makespan(loads, alloc),
                100.0 * omen::allocation_efficiency(loads, alloc));
  }
  return 0;
}
