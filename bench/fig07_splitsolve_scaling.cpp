// Fig. 7: SplitSolve weak and strong scaling on Piz Daint, plus the
// two-phase pipeline the scaling rests on.
//
// Three parts:
//  (1) measured scaling — the SPIKE-partitioned Step 1 on emulated
//      accelerators at laptop scale, showing the same qualitative
//      behaviour: weak-scaling time grows with the spike/merge work,
//      strong scaling saturates when the per-device workload shrinks;
//  (2) measured overlap — the batched (k, E) pipeline with the SplitSolve
//      backend: the asynchronous OBC (lead) stage runs while Step 1 of the
//      device phase is issued, the paper's CPU/GPU two-phase overlap.  The
//      tracer timeline gives the wall-clock union of each phase and the
//      fraction of the shorter phase hidden behind the other;
//  (3) model — the calibrated Piz Daint numbers of the paper (weak: 30 s on
//      2 GPUs -> 70 s on 32 GPUs; strong: limited by workload).
// BENCH_splitsolve.json records the scaling curves and the overlap
// fraction.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "blockmat/block_tridiag.hpp"
#include "dft/hamiltonian.hpp"
#include "numeric/blas.hpp"
#include "omen/engine.hpp"
#include "parallel/device.hpp"
#include "parallel/tracer.hpp"
#include "perf/scaling.hpp"
#include "solvers/spike.hpp"

using namespace omenx;
using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

namespace {

blockmat::BlockTridiag make_system(idx nb, idx s, unsigned seed) {
  blockmat::BlockTridiag t(nb, s);
  for (idx i = 0; i < nb; ++i) {
    t.diag(i) = numeric::random_cmatrix(s, s, seed + (unsigned)i);
    for (idx d = 0; d < s; ++d) t.diag(i)(d, d) += cplx{8.0};
    if (i + 1 < nb) {
      t.upper(i) = numeric::random_cmatrix(s, s, seed + 100 + (unsigned)i);
      t.lower(i) = numeric::random_cmatrix(s, s, seed + 200 + (unsigned)i);
    }
  }
  return t;
}

dft::LeadBlocks synthetic_lead(idx s, unsigned seed) {
  dft::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  CMatrix h0 = numeric::random_cmatrix(s, s, seed);
  lead.h[0] = (h0 + numeric::dagger(h0)) * cplx{0.25};
  lead.h[1] = numeric::random_cmatrix(s, s, seed + 1) * cplx{0.4};
  lead.s[0] = CMatrix::identity(s);
  lead.s[1] = CMatrix(s, s);
  return lead;
}

/// Wall-clock length of the union of [start, end) intervals.
double union_seconds(std::vector<std::pair<double, double>> iv) {
  std::sort(iv.begin(), iv.end());
  double total = 0.0, hi = -1.0, lo = 0.0;
  bool open = false;
  for (const auto& [a, b] : iv) {
    if (!open || a > hi) {
      if (open) total += hi - lo;
      lo = a;
      hi = b;
      open = true;
    } else {
      hi = std::max(hi, b);
    }
  }
  if (open) total += hi - lo;
  return total;
}

/// Wall-clock length of the intersection of two interval unions.
double overlap_seconds(std::vector<std::pair<double, double>> a,
                       std::vector<std::pair<double, double>> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double total = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    (a[i].second < b[j].second ? i : j) += 1;
  }
  return total;
}

}  // namespace

int main() {
  benchutil::header("Fig. 7(a): weak scaling, measured (emulated devices)");
  const idx s = 96;
  const idx blocks_per_dev = 6;
  std::printf("%8s %12s %12s %12s\n", "devices", "blocks", "time (s)",
              "efficiency");
  std::vector<double> weak_t, strong_t;
  double t_base = 0.0;
  for (int p : {1, 2, 4, 8}) {
    const idx nb = blocks_per_dev * p;
    const auto a = make_system(nb, s, 42);
    parallel::DevicePool pool(p);
    solvers::SpikeOptions opt;
    opt.partitions = p;
    benchutil::WallTimer timer;
    solvers::spike_block_columns(a, pool, opt);
    const double t = timer.seconds();
    if (t_base == 0.0) t_base = t;
    weak_t.push_back(t);
    std::printf("%8d %12lld %12.3f %12.2f\n", p, static_cast<long long>(nb), t,
                t_base / t);
  }

  benchutil::header("Fig. 7(b): strong scaling, measured (fixed system)");
  {
    const idx nb = 32;
    const auto a = make_system(nb, s, 77);
    std::printf("%8s %12s %12s\n", "devices", "time (s)", "speedup");
    double t1 = 0.0;
    for (int p : {1, 2, 4, 8}) {
      parallel::DevicePool pool(p);
      solvers::SpikeOptions opt;
      opt.partitions = p;
      benchutil::WallTimer timer;
      solvers::spike_block_columns(a, pool, opt);
      const double t = timer.seconds();
      if (t1 == 0.0) t1 = t;
      strong_t.push_back(t);
      std::printf("%8d %12.3f %12.2f\n", p, t, t1 / t);
    }
  }

  benchutil::header("Two-phase pipeline: OBC stage overlapped with Step 1");
  // A hot-k sweep through the engine's batched path with the SplitSolve
  // backend: every batch prefetches its boundaries on the thread pool while
  // the caller issues the batched Step 1.  The tracer records both phases;
  // the overlap fraction is the share of the shorter phase's wall-clock
  // union that ran concurrently with the other phase.
  double t_obc = 0.0, t_dev = 0.0, t_wall = 0.0, overlap_fraction = 0.0;
  idx batches = 0;
  {
    const idx ls = 8, cells = 24;
    std::vector<dft::LeadBlocks> leads{synthetic_lead(ls, 57)};
    omen::SweepRequest req;
    req.leads = &leads;
    req.cells = cells;
    req.potential.assign(static_cast<std::size_t>(cells), 0.0);
    req.point.obc = transport::ObcAlgorithm::kDecimation;
    req.point.solver = transport::SolverAlgorithm::kSplitSolve;
    req.point.partitions = 4;
    req.point.want_density = false;
    req.point.want_current = false;
    req.energies.resize(1);
    for (int ie = 0; ie < 48; ++ie)
      req.energies[0].push_back(-2.0 + 4.0 * ie / 48);

    omen::EngineConfig cfg;
    cfg.batch_tasks = true;
    cfg.max_batch = 16;
    cfg.cache_boundaries = false;
    omen::Engine engine(cfg);
    engine.run(req);  // warmup
    parallel::Tracer::global().clear();
    benchutil::WallTimer timer;
    const auto res = engine.run(req);
    t_wall = timer.seconds();
    batches = res.stats.batches_issued;

    std::vector<std::pair<double, double>> obc_iv, dev_iv;
    for (const auto& ev : parallel::Tracer::global().events()) {
      if (ev.name == "obc_prefetch") obc_iv.push_back({ev.start_s, ev.end_s});
      if (ev.name == "batch_device_phase")
        dev_iv.push_back({ev.start_s, ev.end_s});
    }
    t_obc = union_seconds(obc_iv);
    t_dev = union_seconds(dev_iv);
    const double shorter = std::min(t_obc, t_dev);
    if (shorter > 0.0)
      overlap_fraction = overlap_seconds(obc_iv, dev_iv) / shorter;

    std::printf("%8s %14s %14s %10s %10s\n", "batches", "OBC union (s)",
                "dev union (s)", "wall (s)", "overlap");
    benchutil::rule();
    std::printf("%8lld %14.4f %14.4f %10.4f %9.0f%%\n",
                static_cast<long long>(batches), t_obc, t_dev, t_wall,
                100.0 * overlap_fraction);
    std::printf("(overlap = share of the shorter phase hidden behind the "
                "other)\n");
  }

  benchutil::header("Fig. 7 model: Piz Daint (paper scale, UTB NSS=NGPU*30720)");
  perf::SplitSolveScalingModel model;
  std::printf("%8s %14s %16s   paper anchors: 30 s @ 2 GPUs, 70 s @ 32\n",
              "GPUs", "weak t (s)", "weak efficiency");
  for (int g : {2, 4, 8, 16, 32})
    std::printf("%8d %14.1f %16.2f\n", g, model.weak_time(g),
                model.weak_efficiency(g));
  benchutil::rule();
  std::printf("%8s %14s %16s   (NSS=122880 fits on 2 GPUs)\n", "GPUs",
              "strong t (s)", "strong eff.");
  for (int g : {2, 4, 8, 16})
    std::printf("%8d %14.1f %16.2f\n", g, model.strong_time(g),
                model.strong_efficiency(g));
  std::printf("spike/merge overhead: +%.0f s per recursive step (paper: 10 s)\n",
              model.spike_step_time_s);

  // --- JSON record -------------------------------------------------------
  std::string json = "{\n";
  {
    benchutil::JsonWriter w;
    w.field("weak_t_p1", weak_t[0]);
    w.field("weak_t_p2", weak_t[1]);
    w.field("weak_t_p4", weak_t[2]);
    w.field("weak_t_p8", weak_t[3]);
    w.field("strong_t_p1", strong_t[0]);
    w.field("strong_t_p2", strong_t[1]);
    w.field("strong_t_p4", strong_t[2]);
    w.field("strong_t_p8", strong_t[3]);
    w.field("strong_speedup_p8", strong_t[0] / strong_t[3], true);
    json += "  \"scaling\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("batches", static_cast<double>(batches));
    w.field("obc_union_s", t_obc);
    w.field("device_union_s", t_dev);
    w.field("wall_s", t_wall);
    w.field("overlap_fraction", overlap_fraction, true);
    json += "  \"two_phase\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("weak_t_2gpu_s", model.weak_time(2));
    w.field("weak_t_32gpu_s", model.weak_time(32));
    w.field("strong_t_2gpu_s", model.strong_time(2));
    w.field("strong_t_16gpu_s", model.strong_time(16));
    w.field("spike_step_time_s", model.spike_step_time_s, true);
    json += "  \"piz_daint_model\": {" + w.body + "}\n}\n";
  }
  std::FILE* f = std::fopen("BENCH_splitsolve.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_splitsolve.json\n");
  }
  return 0;
}
