// Fig. 7: SplitSolve weak and strong scaling on Piz Daint.
//
// Two parts:
//  (1) measured — the SPIKE-partitioned Step 1 on emulated accelerators at
//      laptop scale, showing the same qualitative behaviour: weak-scaling
//      time grows with the spike/merge work, strong scaling saturates when
//      the per-device workload shrinks;
//  (2) model — the calibrated Piz Daint numbers of the paper (weak: 30 s on
//      2 GPUs -> 70 s on 32 GPUs; strong: limited by workload).
#include <cstdio>

#include "bench_util.hpp"
#include "blockmat/block_tridiag.hpp"
#include "numeric/blas.hpp"
#include "parallel/device.hpp"
#include "perf/scaling.hpp"
#include "solvers/spike.hpp"

using namespace omenx;
using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

namespace {

blockmat::BlockTridiag make_system(idx nb, idx s, unsigned seed) {
  blockmat::BlockTridiag t(nb, s);
  for (idx i = 0; i < nb; ++i) {
    t.diag(i) = numeric::random_cmatrix(s, s, seed + (unsigned)i);
    for (idx d = 0; d < s; ++d) t.diag(i)(d, d) += cplx{8.0};
    if (i + 1 < nb) {
      t.upper(i) = numeric::random_cmatrix(s, s, seed + 100 + (unsigned)i);
      t.lower(i) = numeric::random_cmatrix(s, s, seed + 200 + (unsigned)i);
    }
  }
  return t;
}

}  // namespace

int main() {
  benchutil::header("Fig. 7(a): weak scaling, measured (emulated devices)");
  const idx s = 96;
  const idx blocks_per_dev = 6;
  std::printf("%8s %12s %12s %12s\n", "devices", "blocks", "time (s)",
              "efficiency");
  double t_base = 0.0;
  for (int p : {1, 2, 4, 8}) {
    const idx nb = blocks_per_dev * p;
    const auto a = make_system(nb, s, 42);
    parallel::DevicePool pool(p);
    solvers::SpikeOptions opt;
    opt.partitions = p;
    benchutil::WallTimer timer;
    solvers::spike_block_columns(a, pool, opt);
    const double t = timer.seconds();
    if (t_base == 0.0) t_base = t;
    std::printf("%8d %12lld %12.3f %12.2f\n", p, static_cast<long long>(nb), t,
                t_base / t);
  }

  benchutil::header("Fig. 7(b): strong scaling, measured (fixed system)");
  {
    const idx nb = 32;
    const auto a = make_system(nb, s, 77);
    std::printf("%8s %12s %12s\n", "devices", "time (s)", "speedup");
    double t1 = 0.0;
    for (int p : {1, 2, 4, 8}) {
      parallel::DevicePool pool(p);
      solvers::SpikeOptions opt;
      opt.partitions = p;
      benchutil::WallTimer timer;
      solvers::spike_block_columns(a, pool, opt);
      const double t = timer.seconds();
      if (t1 == 0.0) t1 = t;
      std::printf("%8d %12.3f %12.2f\n", p, t, t1 / t);
    }
  }

  benchutil::header("Fig. 7 model: Piz Daint (paper scale, UTB NSS=NGPU*30720)");
  perf::SplitSolveScalingModel model;
  std::printf("%8s %14s %16s   paper anchors: 30 s @ 2 GPUs, 70 s @ 32\n",
              "GPUs", "weak t (s)", "weak efficiency");
  for (int g : {2, 4, 8, 16, 32})
    std::printf("%8d %14.1f %16.2f\n", g, model.weak_time(g),
                model.weak_efficiency(g));
  benchutil::rule();
  std::printf("%8s %14s %16s   (NSS=122880 fits on 2 GPUs)\n", "GPUs",
              "strong t (s)", "strong eff.");
  for (int g : {2, 4, 8, 16})
    std::printf("%8d %14.1f %16.2f\n", g, model.strong_time(g),
                model.strong_efficiency(g));
  std::printf("spike/merge overhead: +%.0f s per recursive step (paper: 10 s)\n",
              model.spike_step_time_s);
  return 0;
}
