// Fig. 10: electron distribution (a), current map (b), and spectral
// current (c) in a Si GAA NWFET under bias.
//
// Paper workload: d=3.2 nm, 55488 atoms, Vds=0.6 V, Id=1.5 uA.  Scaled
// workload: d=0.6 nm nanowire with a gate barrier in the channel.  The
// behaviours to reproduce: charge accumulates in source/drain and thins
// under the gate; the bond current is position-independent (ballistic);
// the spectral current flows above the barrier top (thermionic window).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "omen/simulator.hpp"
#include "poisson/poisson1d.hpp"
#include "transport/bands.hpp"

using namespace omenx;

int main() {
  benchutil::header("Fig. 10: Si GAA NWFET charge/current maps (scaled)");
  benchutil::WallTimer timer;
  omen::SimulationConfig cfg;
  cfg.structure = lattice::make_nanowire(0.6, 16);
  cfg.point.obc = transport::ObcAlgorithm::kFeast;
  cfg.point.obc_opts.feast.annulus_r = 30.0;
  cfg.point.solver = transport::SolverAlgorithm::kSplitSolve;
  cfg.point.partitions = 2;
  omen::Simulator sim(cfg);

  const auto bs = sim.bands(11);
  const auto win = transport::band_window(bs);
  // Probe just above the band bottom, where the gate barrier matters.
  const double mu_s = win.emin + 0.05;

  // Gate barrier in the channel (SCF-converged shape approximated by the
  // Laplace profile of the Poisson solver).
  const lattice::DeviceRegions regions{5, 6, 5};
  poisson::PoissonOptions popt;
  popt.screening_length_cells = 2.0;
  auto pot = poisson::solve_device_potential(regions, -0.9, 0.15, {}, popt);
  // Shift to electron-energy barrier above mu_s.
  for (auto& v : pot) v = -v + 0.0;

  const auto res = sim.solve_point(mu_s + 0.08, &pot);
  const auto per_cell = transport::density_per_cell(
      res.orbital_density, cfg.structure.orbitals_per_cell(), 16);

  std::printf("(a) electron distribution along x (per cell, arb. units)\n");
  double dmax = 0.0;
  for (const double d : per_cell) dmax = std::max(dmax, d);
  for (std::size_t c = 0; c < per_cell.size(); ++c) {
    const int bars = static_cast<int>(40.0 * per_cell[c] / dmax);
    std::printf("  cell %2zu |", c);
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf(" %.3e%s\n", per_cell[c],
                (c >= 5 && c < 11) ? "   <- gate" : "");
  }

  benchutil::rule();
  std::printf("(b) bond current per interface (ballistic -> constant):\n   ");
  double imin = 1e300, imax = -1e300;
  for (const double i : res.interface_current) {
    imin = std::min(imin, i);
    imax = std::max(imax, i);
  }
  std::printf("min %.6e  max %.6e  (spread %.2e)\n", imin, imax,
              imax - imin);

  benchutil::rule();
  std::printf("(c) spectral current J(E) across the barrier:\n");
  std::printf("%12s %14s %14s\n", "E (eV)", "T(E)", "flows?");
  const double barrier_top = *std::max_element(pot.begin(), pot.end());
  for (double e = mu_s - 0.05; e <= mu_s + 0.45; e += 0.0625) {
    const auto r = sim.solve_point(e, &pot);
    std::printf("%12.3f %14.5f %14s\n", e, r.transmission,
                r.transmission > 0.05
                    ? (e > win.emin + barrier_top ? "above barrier" : "tunnel")
                    : "blocked");
  }
  std::printf("barrier top at ~%.3f eV above the lead band bottom\n",
              barrier_top);
  std::printf("elapsed: %.1f s\n", timer.seconds());
  return 0;
}
