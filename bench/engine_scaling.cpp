// Strong scaling of the distributed execution engine on a deliberately
// imbalanced (k, E) grid — one hot momentum with 6x the energy points of
// the others, the situation OMEN's dynamic allocation (Ref. [45]) and the
// engine's work stealing exist for.
//
// For 1/2/4/8 ranks the bench records wall time plus two efficiencies:
//   * eff_wall: T(1 rank) / (n * T(n ranks)) — honest only when the host
//     has >= n cores;
//   * eff_busy: sum(busy) / (n * max(busy)) — load balance of the schedule
//     itself, robust on oversubscribed hosts (all ranks inflate alike).
// Alongside each measurement sits the prediction obtained through the same
// scheduler logic the perf model (perf/scaling.cpp) uses: the
// allocation-makespan efficiency for the static policy, ceil-rounding for
// the dynamic queue.  A static round-robin baseline at 4 ranks is recorded
// so measured stealing gains are visible in BENCH_engine.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dft/hamiltonian.hpp"
#include "numeric/blas.hpp"
#include "omen/engine.hpp"
#include "omen/scheduler.hpp"
#include "transport/transmission.hpp"

using namespace omenx;
using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

namespace {

dft::LeadBlocks bench_lead(idx s, unsigned seed) {
  dft::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  CMatrix h0 = numeric::random_cmatrix(s, s, seed);
  lead.h[0] = (h0 + numeric::dagger(h0)) * cplx{0.25};
  lead.h[1] = numeric::random_cmatrix(s, s, seed + 1) * cplx{0.4};
  lead.s[0] = CMatrix::identity(s);
  lead.s[1] = CMatrix(s, s);
  return lead;
}

struct RunPoint {
  int ranks;
  double wall_s;
  double eff_wall;
  double eff_busy;
  double model_eff;
  idx stolen;
};

}  // namespace

int main() {
  const idx s = 8, cells = 16;
  const int nk = 4;
  const std::vector<idx> loads{48, 8, 8, 8};

  std::vector<dft::LeadBlocks> leads;
  for (int k = 0; k < nk; ++k)
    leads.push_back(bench_lead(s, 11 + 7 * static_cast<unsigned>(k)));

  omen::SweepRequest req;
  req.leads = &leads;
  req.cells = cells;
  req.potential.assign(static_cast<std::size_t>(cells), 0.0);
  req.point.obc = transport::ObcAlgorithm::kDecimation;
  req.point.solver = transport::SolverAlgorithm::kBlockLU;
  req.point.want_density = false;
  req.point.want_current = false;
  req.energies.resize(static_cast<std::size_t>(nk));
  for (int k = 0; k < nk; ++k)
    for (idx ie = 0; ie < loads[static_cast<std::size_t>(k)]; ++ie)
      req.energies[static_cast<std::size_t>(k)].push_back(
          -2.0 + 4.0 * static_cast<double>(ie) /
                     static_cast<double>(loads[static_cast<std::size_t>(k)]));
  const double total_tasks = static_cast<double>(
      std::accumulate(loads.begin(), loads.end(), idx{0}));

  const auto run_once = [&](int ranks, bool stealing) {
    omen::EngineConfig cfg;
    cfg.num_ranks = ranks;
    cfg.work_stealing = stealing;
    cfg.flat_single_rank = false;  // honest serial baseline: same protocol
    omen::Engine engine(cfg);
    return engine.run(req);
  };

  benchutil::header("engine strong scaling, imbalanced k/E grid (48/8/8/8)");
  std::printf("%6s %10s %10s %10s %10s %8s\n", "ranks", "wall (s)",
              "eff_wall", "eff_busy", "model", "stolen");

  // Warm-up pass so first-touch allocation noise stays out of the timings.
  benchutil::consume(run_once(1, true).stats.wall_seconds);

  std::string json = "{\n";
  std::vector<RunPoint> points;
  double t1 = 0.0;
  for (const int ranks : {1, 2, 4, 8}) {
    const auto res = run_once(ranks, true);
    const auto& st = res.stats;
    if (ranks == 1) t1 = st.wall_seconds;
    const double busy_total =
        std::accumulate(st.busy_seconds_per_rank.begin(),
                        st.busy_seconds_per_rank.end(), 0.0);
    const double busy_max =
        *std::max_element(st.busy_seconds_per_rank.begin(),
                          st.busy_seconds_per_rank.end());
    // Dynamic-queue model: makespan = ceil(total / n) task slots.
    const double model =
        (total_tasks / ranks) / std::ceil(total_tasks / ranks);
    RunPoint p{ranks, st.wall_seconds,
               t1 / (ranks * st.wall_seconds),
               busy_total / (ranks * busy_max), model, st.tasks_stolen};
    points.push_back(p);
    std::printf("%6d %10.4f %10.3f %10.3f %10.3f %8lld\n", p.ranks, p.wall_s,
                p.eff_wall, p.eff_busy, p.model_eff,
                static_cast<long long>(p.stolen));
  }

  // Static round-robin baseline at 4 ranks: no stealing, each momentum
  // group only drains its own k.  The perf-model prediction for this
  // policy is the allocation-makespan efficiency of the same allocation
  // the engine used (allocate_groups — shared with perf/scaling.cpp).
  const auto stat4 = run_once(4, false);
  const double stat_busy_total =
      std::accumulate(stat4.stats.busy_seconds_per_rank.begin(),
                      stat4.stats.busy_seconds_per_rank.end(), 0.0);
  const double stat_busy_max =
      *std::max_element(stat4.stats.busy_seconds_per_rank.begin(),
                        stat4.stats.busy_seconds_per_rank.end());
  const double stat_eff_busy = stat_busy_total / (4.0 * stat_busy_max);
  const double stat_model_eff =
      omen::allocation_efficiency(loads, omen::allocate_groups(loads, 4));
  const auto dyn4 = *std::find_if(points.begin(), points.end(),
                                  [](const RunPoint& p) { return p.ranks == 4; });
  benchutil::rule();
  std::printf("static 4 ranks: wall %.4f s, eff_busy %.3f (model %.3f)\n",
              stat4.stats.wall_seconds, stat_eff_busy, stat_model_eff);
  std::printf("stealing 4 ranks beats static: %s (%.3f > %.3f)\n",
              dyn4.eff_busy > stat_eff_busy ? "yes" : "NO",
              dyn4.eff_busy, stat_eff_busy);

  for (const auto& p : points) {
    benchutil::JsonWriter w("%.4f");
    w.field("ranks", static_cast<double>(p.ranks));
    w.field("wall_s", p.wall_s);
    w.field("eff_wall", p.eff_wall);
    w.field("eff_busy", p.eff_busy);
    w.field("model_eff", p.model_eff);
    w.field("tasks_stolen", static_cast<double>(p.stolen), true);
    json += "  \"stealing_" + std::to_string(p.ranks) + "ranks\": {" +
            w.body + "},\n";
  }
  {
    benchutil::JsonWriter w("%.4f");
    w.field("ranks", 4.0);
    w.field("wall_s", stat4.stats.wall_seconds);
    w.field("eff_busy", stat_eff_busy);
    w.field("model_eff", stat_model_eff);
    w.field("stealing_beats_static",
            dyn4.eff_busy > stat_eff_busy ? 1.0 : 0.0, true);
    json += "  \"static_4ranks\": {" + w.body + "}\n}\n";
  }

  std::FILE* f = std::fopen("BENCH_engine.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_engine.json\n");
  }
  return 0;
}
