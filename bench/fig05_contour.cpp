// Fig. 5: the annulus contour in the complex plane that FEAST integrates
// over, keeping only propagating and slowly decaying lead modes.
//
// The bench computes the full companion spectrum of a Si nanowire lead
// (shift-and-invert reference), bins the eigenvalues by |lambda|, and shows
// that FEAST with the annulus contour finds exactly the enclosed subset.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "dft/hamiltonian.hpp"
#include "lattice/structure.hpp"
#include "obc/feast.hpp"
#include "obc/shift_invert.hpp"

using namespace omenx;
using numeric::idx;

int main() {
  benchutil::header("Fig. 5: annulus selection of lead modes");
  benchutil::WallTimer timer;
  const auto wire = lattice::make_nanowire(0.6, 2);
  const dft::BasisLibrary basis;
  const auto lead = dft::build_lead_blocks(wire, basis);
  const double energy = -9.0;

  const auto all = obc::compute_modes_shift_invert(lead, {energy, 0.0});
  std::printf("lead: %s | N_BC = %lld | finite eigenvalues: %zu\n",
              wire.name.c_str(),
              static_cast<long long>(2 * lead.nbw() * lead.block_dim()),
              all.lambda.size());
  std::printf("propagating: %lld right / %lld left\n",
              static_cast<long long>(all.num_propagating_right),
              static_cast<long long>(all.num_propagating_left));

  benchutil::rule();
  std::printf("%14s %20s %20s %12s\n", "annulus R", "enclosed (dense)",
              "found (FEAST)", "max resid");
  for (const double r : {1.5, 3.0, 10.0, 40.0}) {
    idx inside = 0;
    for (const auto lam : all.lambda) {
      const double m = std::abs(lam);
      if (m >= 1.0 / r && m <= r) ++inside;
    }
    obc::FeastOptions fopt;
    fopt.annulus_r = r;
    obc::FeastStats stats;
    const auto feast = obc::compute_modes_feast(lead, {energy, 0.0}, fopt,
                                                &stats);
    std::printf("%14.1f %20lld %20zu %12.2e\n", r,
                static_cast<long long>(inside), feast.lambda.size(),
                stats.max_residual);
  }
  benchutil::rule();
  std::printf("fast-decaying modes (|lambda| outside the annulus) are "
              "neglected, as in the paper\n");
  std::printf("elapsed: %.1f s\n", timer.seconds());
  return 0;
}
