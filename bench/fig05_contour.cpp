// Fig. 5: the annulus contour in the complex plane that FEAST integrates
// over, keeping only propagating and slowly decaying lead modes.
//
// The bench computes the full companion spectrum of a Si nanowire lead
// (shift-and-invert reference), bins the eigenvalues by |lambda|, and shows
// that FEAST with the annulus contour finds exactly the enclosed subset.
// Results land in BENCH_contour.json; nonzero exit if FEAST misses an
// enclosed mode or a subspace residual degrades.  (For wide annuli FEAST
// may keep a few extra near-boundary modes — harmless, the OBC discards
// them by magnitude — so the gate is coverage, not exact equality.)
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "dft/hamiltonian.hpp"
#include "lattice/structure.hpp"
#include "obc/feast.hpp"
#include "obc/shift_invert.hpp"

using namespace omenx;
using numeric::idx;

int main() {
  benchutil::header("Fig. 5: annulus selection of lead modes");
  benchutil::WallTimer timer;
  const auto wire = lattice::make_nanowire(0.6, 2);
  const dft::BasisLibrary basis;
  const auto lead = dft::build_lead_blocks(wire, basis);
  const double energy = -9.0;

  const auto all = obc::compute_modes_shift_invert(lead, {energy, 0.0});
  std::printf("lead: %s | N_BC = %lld | finite eigenvalues: %zu\n",
              wire.name.c_str(),
              static_cast<long long>(2 * lead.nbw() * lead.block_dim()),
              all.lambda.size());
  std::printf("propagating: %lld right / %lld left\n",
              static_cast<long long>(all.num_propagating_right),
              static_cast<long long>(all.num_propagating_left));

  benchutil::rule();
  std::printf("%14s %20s %20s %12s\n", "annulus R", "enclosed (dense)",
              "found (FEAST)", "max resid");
  bool selection_gate = true;
  bool residual_gate = true;
  std::string annuli;
  for (const double r : {1.5, 3.0, 10.0, 40.0}) {
    idx inside = 0;
    for (const auto lam : all.lambda) {
      const double m = std::abs(lam);
      if (m >= 1.0 / r && m <= r) ++inside;
    }
    obc::FeastOptions fopt;
    fopt.annulus_r = r;
    obc::FeastStats stats;
    const auto feast = obc::compute_modes_feast(lead, {energy, 0.0}, fopt,
                                                &stats);
    std::printf("%14.1f %20lld %20zu %12.2e\n", r,
                static_cast<long long>(inside), feast.lambda.size(),
                stats.max_residual);
    selection_gate =
        selection_gate && feast.lambda.size() >= static_cast<std::size_t>(inside);
    residual_gate = residual_gate && stats.max_residual < 1e-6;
    benchutil::JsonWriter w;
    w.field("annulus_r", r);
    w.field("enclosed_dense", static_cast<double>(inside));
    w.field("found_feast", static_cast<double>(feast.lambda.size()));
    w.field("max_residual", stats.max_residual, true);
    annuli += "    {" + w.body + "},\n";
  }
  benchutil::rule();
  std::printf("fast-decaying modes (|lambda| outside the annulus) are "
              "neglected, as in the paper\n");
  const double elapsed = timer.seconds();
  std::printf("elapsed: %.1f s\n", elapsed);

  if (!annuli.empty()) annuli.erase(annuli.size() - 2, 1);  // trailing comma
  std::string json = "{\n";
  {
    benchutil::JsonWriter w;
    w.field("finite_eigenvalues", static_cast<double>(all.lambda.size()));
    w.field("propagating_right",
            static_cast<double>(all.num_propagating_right));
    w.field("propagating_left", static_cast<double>(all.num_propagating_left),
            true);
    json += "  \"lead\": {" + w.body + "},\n";
  }
  json += "  \"annuli\": [\n" + annuli + "  ],\n";
  {
    benchutil::JsonWriter w;
    w.field("elapsed_s", elapsed, true);
    json += "  \"timing\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("feast_covers_enclosed_modes", selection_gate ? 1.0 : 0.0);
    w.field("residual_below_1e6", residual_gate ? 1.0 : 0.0, true);
    json += "  \"gates\": {" + w.body + "}\n}\n";
  }
  std::FILE* f = std::fopen("BENCH_contour.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_contour.json\n");
  }
  return selection_gate && residual_gate ? 0 : 1;
}
