// N-terminal contact bench and CI gate (BENCH_contact.json).
//
// Three gates guard the ContactSet refactor:
//   * symmetric parity — the classic two-identical-contacts device spelled
//     out as an explicit ContactSet must reproduce the implicit pipeline
//     *bitwise* (max |dT| and max |drho| exactly 0, not a tolerance): the
//     engine normalizes the symmetric pair back onto the pre-refactor
//     code path, caching included;
//   * per-contact cache reuse — across an asymmetric-bias SCF iteration
//     history (dissimilar source/drain leads, per-contact shifts), every
//     contact's boundary-cache hit rate from the 2nd charge evaluation on
//     must be >= 90%: lead eigenproblems depend on (k, E, shift, lead),
//     never on the device potential the SCF loop updates;
//   * 3-terminal current conservation — the Buettiker currents from the
//     pairwise T_pq table satisfy sum_p I_p = 0 to machine rounding, for
//     both kMultiTerminal solver backends (rgf, block_lu).
// Nonzero exit if any gate fails.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obc/boundary_cache.hpp"
#include "omen/simulator.hpp"
#include "poisson/scf.hpp"
#include "transport/bands.hpp"
#include "transport/contacts.hpp"

using namespace omenx;
using numeric::idx;

namespace {

lattice::Structure chain_structure(idx cells, double cell_length = 0.5) {
  lattice::Structure chain;
  chain.cell_atoms = {{lattice::Species::kLi, {0.0, 0.0, 0.0}}};
  chain.cell_length = cell_length;
  chain.num_cells = cells;
  chain.name = "contact bench chain";
  return chain;
}

omen::SimulationConfig base_config(idx cells) {
  omen::SimulationConfig cfg;
  cfg.structure = chain_structure(cells);
  cfg.build.cutoff_nm = 1.0;  // NBW = 2: folded supercells
  cfg.point.obc = transport::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
  return cfg;
}

std::vector<omen::ContactConfig> explicit_pair() {
  std::vector<omen::ContactConfig> cs(2);
  cs[0].block = 0;
  cs[1].block = transport::kLastBlock;
  return cs;
}

double max_abs_delta(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double out = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
    out = std::max(out, std::abs(a[i] - b[i]));
  return out;
}

}  // namespace

int main() {
  benchutil::header("N-terminal contacts: symmetric parity, cache reuse, "
                    "current conservation");

  omen::Simulator probe(base_config(16));
  const auto win = transport::band_window(probe.bands(9));
  const double mid = 0.5 * (win.emin + win.emax);
  std::vector<double> grid;
  for (double e = win.emin + 0.05; e < win.emax; e += 0.04)
    grid.push_back(e);
  std::vector<double> cgrid;
  for (double e = mid - 0.4; e <= mid + 0.4; e += 0.04) cgrid.push_back(e);
  std::vector<double> barrier(16, 0.0);
  barrier[7] = barrier[8] = 0.5;

  // --- gate 1: symmetric limit is bitwise-identical ----------------------
  omen::Simulator classic(base_config(16));
  omen::SimulationConfig explicit_cfg = base_config(16);
  explicit_cfg.contacts = explicit_pair();
  omen::Simulator spelled(explicit_cfg);

  const auto t_classic = classic.transmission_spectrum(grid, &barrier);
  const auto t_spelled = spelled.transmission_spectrum(grid, &barrier);
  const auto q_classic =
      classic.charge_density(cgrid, mid, mid - 0.2, &barrier);
  const auto q_spelled =
      spelled.charge_density(cgrid, mid, mid - 0.2, &barrier);
  const double sym_dt =
      max_abs_delta(t_classic.transmission, t_spelled.transmission);
  const double sym_dq = max_abs_delta(q_classic, q_spelled);
  const bool sym_gate = sym_dt == 0.0 && sym_dq == 0.0;
  std::printf("symmetric pair, explicit vs implicit: max|dT| = %.3g, "
              "max|drho| = %.3g (gate == 0: %s)\n",
              sym_dt, sym_dq, sym_gate ? "yes" : "NO");

  // --- gate 2: per-contact cache reuse across an asymmetric-bias SCF -----
  // Dissimilar leads (drain cell stretched to 0.6 nm) under per-contact
  // shifts: every boundary key is contact-scoped, and nothing in the SCF
  // loop touches the leads — from the 2nd charge evaluation on, both
  // contacts must serve >= 90% of their boundary fetches from the cache.
  omen::SimulationConfig asym_cfg = base_config(16);
  asym_cfg.contacts = explicit_pair();
  asym_cfg.contacts[1].material = chain_structure(16, 0.6);
  omen::Simulator asym(asym_cfg);
  asym.set_contact_shift(0, 0.0);
  asym.set_contact_shift(1, -0.08);

  const lattice::DeviceRegions regions{5, 6, 5};
  poisson::ScfOptions scf;
  scf.poisson.screening_length_cells = 2.0;
  scf.poisson.charge_coupling = 0.25;
  scf.max_iter = 4;
  scf.tol = 1e-14;  // never converges early: exactly 4 charge sweeps
  scf.charge_tol = 0.0;

  std::vector<std::vector<obc::BoundaryCache::Stats>> per_iter;
  benchutil::WallTimer timer;
  poisson::ChargeModel charge = [&](const std::vector<double>& v) {
    auto rho = asym.charge_density(cgrid, mid, mid - 0.25, &v);
    per_iter.push_back(asym.last_sweep_stats().contact_cache_stats);
    return rho;
  };
  const auto scf_res =
      poisson::self_consistent_potential(regions, 0.1, 0.25, charge, scf);
  const double scf_wall = timer.seconds();
  benchutil::consume(scf_res.potential);

  double hit_rate[2] = {1.0, 1.0};
  bool cache_gate = per_iter.size() >= 2;
  for (int c = 0; c < 2; ++c) {
    std::uint64_t hits = 0, misses = 0;
    for (std::size_t it = 1; it < per_iter.size(); ++it) {
      if (per_iter[it].size() < 2) continue;
      hits += per_iter[it][static_cast<std::size_t>(c)].hits;
      misses += per_iter[it][static_cast<std::size_t>(c)].misses;
    }
    hit_rate[c] = static_cast<double>(hits) /
                  static_cast<double>(std::max<std::uint64_t>(1, hits + misses));
    cache_gate = cache_gate && hit_rate[c] >= 0.9;
  }
  std::printf("asymmetric-bias SCF (%zu evaluations, %.3f s): per-contact "
              "hit rate from 2nd iteration = %.1f%% / %.1f%% "
              "(gate >= 90%%: %s)\n",
              per_iter.size(), scf_wall, 100.0 * hit_rate[0],
              100.0 * hit_rate[1], cache_gate ? "yes" : "NO");

  // --- gate 3: 3-terminal current conservation ---------------------------
  bool current_gate = true;
  double worst_leak = 0.0;
  double currents_lu[3] = {0.0, 0.0, 0.0};
  for (const auto solver : {transport::SolverAlgorithm::kBlockLU,
                            transport::SolverAlgorithm::kRgf}) {
    omen::SimulationConfig cfg3 = base_config(16);
    cfg3.point.solver = solver;
    cfg3.contacts.resize(3);
    cfg3.contacts[0].block = 0;
    cfg3.contacts[1].block = 3;  // interior probe
    cfg3.contacts[2].block = transport::kLastBlock;
    omen::Simulator three(cfg3);
    const std::vector<double> mu{mid + 0.12, mid, mid - 0.12};
    const auto currents = three.terminal_currents(grid, mu, &barrier);
    double total = 0.0, scale = 0.0;
    for (const double i : currents) {
      total += i;
      scale = std::max(scale, std::abs(i));
    }
    const double leak = std::abs(total) / std::max(1.0, scale);
    worst_leak = std::max(worst_leak, leak);
    current_gate = current_gate && leak <= 1e-12 && scale > 1e-9;
    if (solver == transport::SolverAlgorithm::kBlockLU)
      for (int c = 0; c < 3; ++c)
        currents_lu[c] = currents[static_cast<std::size_t>(c)];
    std::printf("3-terminal %s: I = {%+.4e, %+.4e, %+.4e}, "
                "|sum| / max|I| = %.3g\n",
                solver == transport::SolverAlgorithm::kBlockLU ? "block_lu"
                                                               : "rgf",
                currents[0], currents[1], currents[2], leak);
  }
  std::printf("current conservation gate (<= 1e-12): %s\n",
              current_gate ? "yes" : "NO");

  // --- JSON record -------------------------------------------------------
  std::string json = "{\n";
  {
    benchutil::JsonWriter w;
    w.field("max_dt", sym_dt);
    w.field("max_drho", sym_dq, true);
    json += "  \"symmetric_parity\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("scf_evaluations", static_cast<double>(per_iter.size()));
    w.field("scf_wall_s", scf_wall);
    w.field("hit_rate_contact0", hit_rate[0]);
    w.field("hit_rate_contact1", hit_rate[1], true);
    json += "  \"scf_cache\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("current_source", currents_lu[0]);
    w.field("current_probe", currents_lu[1]);
    w.field("current_drain", currents_lu[2]);
    w.field("conservation_leak", worst_leak, true);
    json += "  \"three_terminal\": {" + w.body + "},\n";
  }
  {
    benchutil::JsonWriter w;
    w.field("symmetric_bitwise_identical", sym_gate ? 1.0 : 0.0);
    w.field("cache_hit_rate_ge_90", cache_gate ? 1.0 : 0.0);
    w.field("currents_conserve", current_gate ? 1.0 : 0.0, true);
    json += "  \"gates\": {" + w.body + "}\n}\n";
  }
  std::FILE* f = std::fopen("BENCH_contact.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_contact.json\n");
  }
  return sym_gate && cache_gate && current_gate ? 0 : 1;
}
